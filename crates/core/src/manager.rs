//! Body-bias boost/sleep management (paper Sec. II-A points 2–3).
//!
//! FD-SOI's back gate gives a server two fast, state-retentive knobs:
//!
//! * **FBB boost** — temporarily raise frequency at fixed voltage to absorb
//!   a computation spike, with < 1 µs bias slew;
//! * **RBB sleep** — cut leakage by up to an order of magnitude during idle
//!   gaps too short for power gating (whose state loss costs ~100 µs to
//!   recover).
//!
//! [`BiasManager`] plays a duty-cycled load timeline (bursts of work
//! separated by idle gaps) under different policies and accounts energy,
//! including transition costs — the paper's qualitative argument made
//! quantitative.

use ntc_power::{CoreActivity, CorePowerModel};
use ntc_tech::{
    BodyBias, Joules, MegaHertz, OperatingPoint, Picoseconds, Seconds, SleepMode, TechError, Volts,
    Watts,
};
use serde::{Deserialize, Serialize};

/// Idle-period handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ManagerPolicy {
    /// Stay at the operating point, clock-gated (leakage burns).
    ClockGateOnly,
    /// Enter reverse-body-bias sleep at the retention voltage.
    RbbSleep {
        /// Reverse bias magnitude to apply (volts).
        bias_volts: f64,
    },
    /// Power-gate the core (near-zero leakage, slow, state lost).
    PowerGate,
}

/// One phase of the managed timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManagedPhase {
    /// Busy time of the burst.
    pub busy: Seconds,
    /// Idle gap after the burst.
    pub idle: Seconds,
}

/// Energy account of a managed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManagedEnergy {
    /// Energy spent executing bursts.
    pub busy_energy: Joules,
    /// Energy spent across idle gaps (residual leakage).
    pub idle_energy: Joules,
    /// Energy-equivalent of transition time (entry/exit at awake leakage)
    /// plus any wake-up work.
    pub transition_energy: Joules,
    /// Total wall-clock time, including wake-up delays.
    pub total_time: Seconds,
    /// Number of idle gaps too short to use the policy (fell back to clock
    /// gating).
    pub skipped_gaps: u64,
}

impl ManagedEnergy {
    /// Total energy.
    pub fn total(&self) -> Joules {
        self.busy_energy + self.idle_energy + self.transition_energy
    }
}

/// Plays load timelines against bias policies.
#[derive(Debug, Clone)]
pub struct BiasManager<'a> {
    core: &'a CorePowerModel,
    op: OperatingPoint,
}

impl<'a> BiasManager<'a> {
    /// Creates a manager for one core at an operating point.
    pub fn new(core: &'a CorePowerModel, op: OperatingPoint) -> Self {
        BiasManager { core, op }
    }

    /// Runs the timeline under a policy and accounts energy for one core.
    ///
    /// # Errors
    ///
    /// Returns a technology error if the policy's bias is illegal for the
    /// core's flavour (e.g. RBB on a flip-well device).
    pub fn run(
        &self,
        phases: &[ManagedPhase],
        policy: ManagerPolicy,
    ) -> Result<ManagedEnergy, TechError> {
        let busy_power = self.core.power(self.op, CoreActivity::BUSY);
        let awake_leak = self.core.static_power(self.op, CoreActivity::IDLE);
        let retention = self.core.timing().technology().sram().vmin_retain();

        let (sleep_power, entry, exit, min_gap): (Watts, Picoseconds, Picoseconds, Seconds) =
            match policy {
                ManagerPolicy::ClockGateOnly => {
                    (awake_leak, Picoseconds(0.0), Picoseconds(0.0), Seconds(0.0))
                }
                ManagerPolicy::RbbSleep { bias_volts } => {
                    let bias = BodyBias::reverse(Volts(bias_volts))?;
                    self.core.timing().technology().check_bias(bias)?;
                    let t = SleepMode::ReverseBias { bias }.transition(0.0);
                    let p = self.core.sleep_power(retention, bias);
                    let min_gap = Seconds((t.entry + t.exit).as_seconds().0 * 4.0);
                    (p, t.entry, t.exit, min_gap)
                }
                ManagerPolicy::PowerGate => {
                    let t = SleepMode::PowerGated.transition(0.0);
                    let min_gap = Seconds((t.entry + t.exit).as_seconds().0 * 2.0);
                    (awake_leak * 0.02, t.entry, t.exit, min_gap)
                }
            };

        let mut acc = ManagedEnergy {
            busy_energy: Joules(0.0),
            idle_energy: Joules(0.0),
            transition_energy: Joules(0.0),
            total_time: Seconds(0.0),
            skipped_gaps: 0,
        };
        for ph in phases {
            acc.busy_energy += busy_power.over_time(ph.busy);
            acc.total_time += ph.busy;
            if ph.idle.0 <= 0.0 {
                continue;
            }
            if ph.idle < min_gap {
                // Gap too short: transitions would dominate; clock-gate.
                acc.idle_energy += awake_leak.over_time(ph.idle);
                acc.total_time += ph.idle;
                acc.skipped_gaps += 1;
                continue;
            }
            let trans = entry.as_seconds() + exit.as_seconds();
            let asleep = Seconds(ph.idle.0 - trans.0);
            acc.transition_energy += awake_leak.over_time(trans);
            acc.idle_energy += sleep_power.over_time(asleep);
            // Wake-up latency extends the timeline beyond the gap.
            acc.total_time += ph.idle + exit.as_seconds();
        }
        Ok(acc)
    }

    /// Boost check: the extra frequency available by applying `fbb` at the
    /// manager's current voltage, and the time to engage it.
    ///
    /// # Errors
    ///
    /// Propagates bias/voltage range errors.
    pub fn boost_headroom(&self, fbb: BodyBias) -> Result<(MegaHertz, Picoseconds), TechError> {
        let base = self.core.timing().fmax(self.op.vdd, self.op.bias)?;
        let boosted = self.core.timing().fmax(self.op.vdd, fbb)?;
        let slew = self.op.bias.transition_time(fbb);
        Ok((MegaHertz((boosted.0 - base.0).max(0.0)), slew))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_tech::{CoreModel, Technology, TechnologyKind};

    fn core(kind: TechnologyKind) -> CorePowerModel {
        CorePowerModel::cortex_a57(CoreModel::cortex_a57(Technology::preset(kind))).unwrap()
    }

    fn op(core: &CorePowerModel, mhz: f64) -> OperatingPoint {
        OperatingPoint::at(core.timing(), MegaHertz(mhz), BodyBias::ZERO).unwrap()
    }

    /// 1 ms bursts with 4 ms gaps — a 20% duty cycle with gaps far above
    /// the microsecond transition scale.
    fn duty_cycle() -> Vec<ManagedPhase> {
        vec![
            ManagedPhase {
                busy: Seconds(1e-3),
                idle: Seconds(4e-3),
            };
            50
        ]
    }

    #[test]
    fn rbb_sleep_beats_clock_gating_on_idle_energy() {
        let c = core(TechnologyKind::FdSoi28ConventionalWell);
        let m = BiasManager::new(&c, op(&c, 500.0));
        let cg = m.run(&duty_cycle(), ManagerPolicy::ClockGateOnly).unwrap();
        let rbb = m
            .run(&duty_cycle(), ManagerPolicy::RbbSleep { bias_volts: 3.0 })
            .unwrap();
        assert!(
            rbb.idle_energy.0 < cg.idle_energy.0 * 0.4,
            "rbb should slash idle leakage: {} vs {}",
            rbb.idle_energy,
            cg.idle_energy
        );
        assert!(rbb.total().0 < cg.total().0);
    }

    #[test]
    fn rbb_is_illegal_on_flip_well_cores() {
        let c = core(TechnologyKind::FdSoi28);
        let m = BiasManager::new(&c, op(&c, 500.0));
        assert!(m
            .run(&duty_cycle(), ManagerPolicy::RbbSleep { bias_volts: 3.0 })
            .is_err());
    }

    #[test]
    fn short_gaps_defeat_power_gating_but_not_rbb() {
        // 50 us gaps: far above RBB's ~5 us round trip, far below power
        // gating's ~100 us wake.
        let phases: Vec<ManagedPhase> = vec![
            ManagedPhase {
                busy: Seconds(50e-6),
                idle: Seconds(50e-6),
            };
            200
        ];
        let c = core(TechnologyKind::FdSoi28ConventionalWell);
        let m = BiasManager::new(&c, op(&c, 500.0));
        let rbb = m
            .run(&phases, ManagerPolicy::RbbSleep { bias_volts: 3.0 })
            .unwrap();
        let pg = m.run(&phases, ManagerPolicy::PowerGate).unwrap();
        assert_eq!(rbb.skipped_gaps, 0, "rbb fits in 50 us gaps");
        assert_eq!(pg.skipped_gaps, 200, "power gating cannot use 50 us gaps");
        assert!(rbb.total().0 < pg.total().0);
    }

    #[test]
    fn power_gate_wins_on_very_long_gaps() {
        let phases: Vec<ManagedPhase> = vec![
            ManagedPhase {
                busy: Seconds(1e-3),
                idle: Seconds(1.0),
            };
            3
        ];
        let c = core(TechnologyKind::FdSoi28ConventionalWell);
        let m = BiasManager::new(&c, op(&c, 500.0));
        let rbb = m
            .run(&phases, ManagerPolicy::RbbSleep { bias_volts: 3.0 })
            .unwrap();
        let pg = m.run(&phases, ManagerPolicy::PowerGate).unwrap();
        assert!(
            pg.idle_energy.0 < rbb.idle_energy.0,
            "gating's near-zero leakage wins second-scale gaps"
        );
    }

    #[test]
    fn boost_headroom_is_positive_and_fast() {
        let c = core(TechnologyKind::FdSoi28);
        let m = BiasManager::new(&c, op(&c, 500.0));
        let fbb = BodyBias::forward(Volts(2.0)).unwrap();
        let (extra, slew) = m.boost_headroom(fbb).unwrap();
        assert!(
            extra.0 > 100.0,
            "fbb boost should add real headroom: {extra}"
        );
        assert!(
            slew.as_seconds().0 < 2e-6,
            "bias slew is about a microsecond: {slew}"
        );
    }
}
