//! QoS-constrained optimum selection.
//!
//! The unconstrained efficiency optimum is worthless if it violates the
//! application's latency contract. [`ConstrainedOptimum`] intersects a
//! sweep's efficiency series with either a tail-latency curve (scale-out)
//! or a degradation bound (VMs) and picks the best *feasible* point — the
//! paper's actual operating recommendation.

use crate::efficiency::{EfficiencyPoint, SweepResult};
use ntc_power::Scope;
use ntc_qos::{DegradationModel, QosCurve};
use ntc_workloads::{QosTarget, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// A feasible-optimum query over a sweep.
#[derive(Debug, Clone)]
pub struct ConstrainedOptimum<'a> {
    result: &'a SweepResult,
    profile: &'a WorkloadProfile,
}

/// The outcome: the chosen point and the QoS floor that constrained it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeasibleOptimum {
    /// The selected efficiency point.
    pub point: EfficiencyPoint,
    /// The lowest QoS-feasible frequency on the ladder (MHz).
    pub qos_floor_mhz: f64,
}

impl<'a> ConstrainedOptimum<'a> {
    /// Creates the query.
    pub fn new(result: &'a SweepResult, profile: &'a WorkloadProfile) -> Self {
        ConstrainedOptimum { result, profile }
    }

    /// The lowest frequency meeting the profile's QoS, if any.
    pub fn qos_floor(&self) -> Option<f64> {
        let samples = self.result.uips_samples();
        match self.profile.qos {
            QosTarget::TailLatency { .. } => {
                QosCurve::build(self.profile, &samples).min_qos_frequency()
            }
            QosTarget::BatchDegradation { max_slowdown } => {
                let base = samples
                    .iter()
                    .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))?
                    .1;
                DegradationModel::new(base).min_frequency(&samples, max_slowdown)
            }
        }
    }

    /// The most efficient point at `scope` among those meeting QoS.
    pub fn best(&self, scope: Scope) -> Option<FeasibleOptimum> {
        let floor = self.qos_floor()?;
        let point = self
            .result
            .efficiency()
            .into_iter()
            .filter(|e| e.mhz >= floor)
            .max_by(|a, b| {
                a.at_scope(scope)
                    .partial_cmp(&b.at_scope(scope))
                    .expect("finite efficiencies")
            })?;
        Some(FeasibleOptimum {
            point,
            qos_floor_mhz: floor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crate::measure::TableMeasurer;
    use crate::sweep::FrequencySweep;
    use ntc_workloads::CloudSuiteApp;

    fn result() -> SweepResult {
        let server = ServerConfig::paper().build().unwrap();
        let m = TableMeasurer::synthetic(3.2, 1.6);
        FrequencySweep::paper_ladder().run(&server, &m).unwrap()
    }

    #[test]
    fn scale_out_floor_lands_in_200_500mhz() {
        let r = result();
        for app in CloudSuiteApp::ALL {
            let p = WorkloadProfile::cloudsuite(app);
            let floor = ConstrainedOptimum::new(&r, &p).qos_floor().unwrap();
            assert!(
                (100.0..=600.0).contains(&floor),
                "{app}: QoS floor {floor} MHz outside the paper's window"
            );
        }
    }

    #[test]
    fn vm_floors_match_the_degradation_bounds() {
        // CPU-bound VMs: UIPC nearly flat in frequency, so degradation
        // tracks the frequency ratio.
        let server = ServerConfig::paper().build().unwrap();
        let m = TableMeasurer::synthetic(2.15, 2.0);
        let r = FrequencySweep::paper_ladder().run(&server, &m).unwrap();
        let p4 = WorkloadProfile::banking_low_mem(4.0);
        let p2 = WorkloadProfile::banking_low_mem(2.0);
        let f4 = ConstrainedOptimum::new(&r, &p4).qos_floor().unwrap();
        let f2 = ConstrainedOptimum::new(&r, &p2).qos_floor().unwrap();
        assert!(f4 < f2, "a looser bound admits lower frequency");
        assert!(
            (300.0..=700.0).contains(&f4),
            "4x bound should admit roughly 500 MHz, got {f4}"
        );
        assert!(
            (800.0..=1200.0).contains(&f2),
            "2x bound should admit roughly 1 GHz, got {f2}"
        );
    }

    #[test]
    fn best_point_is_feasible_and_scoped() {
        let r = result();
        let p = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
        let q = ConstrainedOptimum::new(&r, &p);
        let cores = q.best(Scope::Cores).unwrap();
        let server = q.best(Scope::Server).unwrap();
        assert!(cores.point.mhz >= cores.qos_floor_mhz);
        // Cores-only efficiency peaks at the QoS floor; server-scope
        // efficiency peaks much higher.
        assert!(server.point.mhz > cores.point.mhz);
    }

    #[test]
    fn cores_scope_optimum_sits_at_the_qos_floor() {
        // Paper: "the QoS requirements dictate this operating point".
        let r = result();
        let p = WorkloadProfile::cloudsuite(CloudSuiteApp::DataServing);
        let q = ConstrainedOptimum::new(&r, &p);
        let best = q.best(Scope::Cores).unwrap();
        assert!(
            (best.point.mhz - best.qos_floor_mhz).abs() < 1e-9,
            "cores-only optimum is the lowest feasible frequency"
        );
    }
}
