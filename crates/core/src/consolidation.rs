//! Workload consolidation under relaxed public-cloud QoS (paper Sec. V-C).
//!
//! "Given that the core frequency can be greatly reduced, application
//! consolidation should be possible [...] under the more relaxed latency
//! constraints of the public cloud environments, where servers are usually
//! oversubscribed, the optimal energy efficiency point could be adjusted
//! to accommodate more workloads on the same server."
//!
//! [`Consolidator`] packs a Bitbrains-style VM population onto servers
//! running at a chosen operating point: each server offers
//! `cores × f/f_ref` of CPU capacity inflated by the degradation bound the
//! tenants tolerate, and VMs are first-fit-decreasing packed by CPU and
//! memory. Output: servers needed, energy per VM, and how both improve as
//! QoS relaxes.

use crate::efficiency::SweepResult;
use ntc_workloads::VmRecord;
use serde::{Deserialize, Serialize};

/// Reference frequency VM demand is quoted against (the 2 GHz baseline).
pub const REFERENCE_MHZ: f64 = 2000.0;

/// A consolidation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationPlan {
    /// Operating frequency of every server (MHz).
    pub mhz: f64,
    /// Degradation bound offered to tenants.
    pub max_slowdown: f64,
    /// Number of servers used.
    pub servers: usize,
    /// VMs placed (always the full population).
    pub vms: usize,
    /// Mean VMs per server.
    pub vms_per_server: f64,
    /// Server power at the operating point (W).
    pub server_watts: f64,
    /// Fleet power (W).
    pub fleet_watts: f64,
    /// Watts per VM — the consolidation figure of merit.
    pub watts_per_vm: f64,
}

/// Packs VM populations onto near-threshold servers.
#[derive(Debug, Clone)]
pub struct Consolidator {
    /// CPU capacity of one core at the reference frequency (one VM at
    /// 100 % utilization consumes 1.0).
    cores_per_server: u32,
    /// Server memory capacity in bytes.
    memory_bytes: u64,
}

impl Consolidator {
    /// The paper's server: 36 cores, 64 GB.
    pub fn paper_server() -> Self {
        Consolidator {
            cores_per_server: 36,
            memory_bytes: 64 << 30,
        }
    }

    /// A custom server shape.
    ///
    /// # Panics
    ///
    /// Panics on a zero-core or zero-memory server.
    pub fn new(cores_per_server: u32, memory_bytes: u64) -> Self {
        assert!(
            cores_per_server > 0 && memory_bytes > 0,
            "degenerate server"
        );
        Consolidator {
            cores_per_server,
            memory_bytes,
        }
    }

    /// CPU capacity of one server at `mhz` under a degradation bound:
    /// cores × (f/f_ref) × slowdown (tenants accepting 4× effectively
    /// let 4× more work share a core).
    pub fn cpu_capacity(&self, mhz: f64, max_slowdown: f64) -> f64 {
        f64::from(self.cores_per_server) * (mhz / REFERENCE_MHZ) * max_slowdown
    }

    /// Packs `population` onto servers at the sweep point closest to the
    /// QoS-feasible efficiency optimum.
    ///
    /// First-fit-decreasing by CPU demand, respecting both the CPU and the
    /// memory capacity of each server.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty, the sweep lacks the requested
    /// frequency, or any single VM exceeds a server's capacity.
    pub fn pack(
        &self,
        result: &SweepResult,
        mhz: f64,
        max_slowdown: f64,
        population: &[VmRecord],
    ) -> ConsolidationPlan {
        assert!(!population.is_empty(), "nothing to consolidate");
        let point = result
            .at(mhz)
            .unwrap_or_else(|| panic!("sweep has no point at {mhz} MHz"));
        let cpu_cap = self.cpu_capacity(mhz, max_slowdown);

        let mut vms: Vec<&VmRecord> = population.iter().collect();
        vms.sort_by(|a, b| {
            b.cpu_utilization
                .partial_cmp(&a.cpu_utilization)
                .expect("finite utilizations")
        });

        let mut servers: Vec<(f64, u64)> = Vec::new(); // (cpu used, mem used)
        for vm in vms {
            assert!(
                vm.cpu_utilization <= cpu_cap && vm.memory_bytes <= self.memory_bytes,
                "vm {} does not fit an empty server",
                vm.id
            );
            let slot = servers.iter_mut().find(|(cpu, mem)| {
                cpu + vm.cpu_utilization <= cpu_cap && mem + vm.memory_bytes <= self.memory_bytes
            });
            match slot {
                Some((cpu, mem)) => {
                    *cpu += vm.cpu_utilization;
                    *mem += vm.memory_bytes;
                }
                None => servers.push((vm.cpu_utilization, vm.memory_bytes)),
            }
        }

        let server_watts = point.power.server().0;
        let fleet_watts = server_watts * servers.len() as f64;
        ConsolidationPlan {
            mhz,
            max_slowdown,
            servers: servers.len(),
            vms: population.len(),
            vms_per_server: population.len() as f64 / servers.len() as f64,
            server_watts,
            fleet_watts,
            watts_per_vm: fleet_watts / population.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crate::measure::TableMeasurer;
    use crate::sweep::FrequencySweep;
    use ntc_workloads::BitbrainsSynthesizer;

    fn result() -> SweepResult {
        let server = ServerConfig::paper().build().unwrap();
        let m = TableMeasurer::synthetic(3.2, 1.6);
        FrequencySweep::paper_ladder().run(&server, &m).unwrap()
    }

    fn population() -> Vec<ntc_workloads::VmRecord> {
        BitbrainsSynthesizer::new(11).trace_population()
    }

    #[test]
    fn relaxed_qos_packs_more_vms_per_server() {
        let r = result();
        let c = Consolidator::paper_server();
        let pop = population();
        let tight = c.pack(&r, 1000.0, 2.0, &pop);
        let loose = c.pack(&r, 1000.0, 4.0, &pop);
        assert!(loose.vms_per_server > tight.vms_per_server);
        assert!(loose.servers < tight.servers);
        assert!(loose.watts_per_vm < tight.watts_per_vm);
    }

    #[test]
    fn near_threshold_fleet_beats_full_speed_on_watts_per_vm() {
        // Run the fleet at 500 MHz/4x instead of 2 GHz/1x: per-server
        // capacity matches (36 * 0.25 * 4 = 36), but each server burns far
        // less power.
        let r = result();
        let c = Consolidator::paper_server();
        let pop = population();
        let fast = c.pack(&r, 2000.0, 1.0, &pop);
        let ntc = c.pack(&r, 500.0, 4.0, &pop);
        assert!(
            (c.cpu_capacity(2000.0, 1.0) - c.cpu_capacity(500.0, 4.0)).abs() < 1e-9,
            "capacities match by construction"
        );
        assert!(
            ntc.watts_per_vm < fast.watts_per_vm * 0.7,
            "NTC consolidation should cut watts/VM: {} vs {}",
            ntc.watts_per_vm,
            fast.watts_per_vm
        );
    }

    #[test]
    fn all_vms_are_placed() {
        let r = result();
        let c = Consolidator::paper_server();
        let pop = population();
        let plan = c.pack(&r, 1000.0, 4.0, &pop);
        assert_eq!(plan.vms, pop.len());
        assert!(plan.servers >= 1);
        assert!((plan.fleet_watts - plan.server_watts * plan.servers as f64).abs() < 1e-9);
    }

    #[test]
    fn capacity_formula() {
        let c = Consolidator::paper_server();
        assert!((c.cpu_capacity(2000.0, 1.0) - 36.0).abs() < 1e-12);
        assert!((c.cpu_capacity(500.0, 1.0) - 9.0).abs() < 1e-12);
        assert!((c.cpu_capacity(500.0, 4.0) - 36.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no point at")]
    fn unknown_frequency_panics() {
        let r = result();
        let c = Consolidator::paper_server();
        let pop = population();
        let _ = c.pack(&r, 1234.0, 2.0, &pop);
    }
}
