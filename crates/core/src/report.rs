//! Human-readable tables and machine-readable JSON for experiment output.
//!
//! Every figure/table regenerator in `ntc-bench` prints through this
//! module so EXPERIMENTS.md rows can be produced (and re-diffed) uniformly.

use crate::efficiency::{EfficiencyPoint, SweepResult};
use serde::Serialize;
use std::fmt::Write as _;

/// A labelled series of `(x, y)` values — one line of a figure.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The `x` of the maximal `y`, if any.
    pub fn argmax(&self) -> Option<(f64, f64)> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite values"))
    }
}

/// A figure: shared x-axis, several series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Figure {
    /// Figure identifier ("Figure 3a").
    pub id: String,
    /// Axis titles.
    pub x_label: String,
    /// Y-axis title.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series (builder style).
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Renders a fixed-width text table: one row per x, one column per
    /// series.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {} : {} vs {} ==",
            self.id, self.y_label, self.x_label
        );
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>16}", truncate(&s.label, 16));
        }
        let _ = writeln!(out);
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{x:>12.0}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, y)) => {
                        let _ = write!(out, " {y:>16.4}");
                    }
                    None => {
                        let _ = write!(out, " {:>16}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        for s in &self.series {
            if let Some((x, y)) = s.argmax() {
                let _ = writeln!(out, "-- {}: peak {y:.4} at {x:.0}", s.label);
            }
        }
        out
    }

    /// Serializes the figure to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics only if serialization fails, which cannot happen for finite
    /// numeric data.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("figures serialize")
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

/// Builds the three per-scope efficiency series of one sweep (the panels
/// of Figure 3/4), labelled by the workload.
pub fn efficiency_series(label: &str, result: &SweepResult) -> [Series; 3] {
    let eff: Vec<EfficiencyPoint> = result.efficiency();
    let mk = |f: fn(&EfficiencyPoint) -> f64| eff.iter().map(|e| (e.mhz, f(e))).collect::<Vec<_>>();
    [
        Series::new(label.to_owned(), mk(|e| e.cores)),
        Series::new(label.to_owned(), mk(|e| e.soc)),
        Series::new(label.to_owned(), mk(|e| e.server)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        Figure::new("Figure X", "MHz", "eff")
            .with_series(Series::new("a", vec![(100.0, 1.0), (200.0, 3.0)]))
            .with_series(Series::new("b", vec![(100.0, 2.0), (200.0, 1.0)]))
    }

    #[test]
    fn table_contains_rows_and_peaks() {
        let t = fig().to_table();
        assert!(t.contains("Figure X"));
        assert!(t.contains("100"));
        assert!(t.contains("peak 3.0000 at 200"));
        assert!(t.contains("peak 2.0000 at 100"));
    }

    #[test]
    fn json_round_trips_labels() {
        let j = fig().to_json();
        assert!(j.contains("\"Figure X\""));
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["series"][0]["label"], "a");
    }

    #[test]
    fn argmax() {
        let s = Series::new("s", vec![(1.0, 5.0), (2.0, 9.0), (3.0, 7.0)]);
        assert_eq!(s.argmax(), Some((2.0, 9.0)));
        assert_eq!(Series::new("e", vec![]).argmax(), None);
    }

    #[test]
    fn ragged_series_render_dashes() {
        let f = Figure::new("F", "x", "y")
            .with_series(Series::new("long", vec![(1.0, 1.0), (2.0, 2.0)]))
            .with_series(Series::new("short", vec![(1.0, 1.0)]));
        let t = f.to_table();
        assert!(t.contains('-'));
    }
}
