//! The energy observability plane: windowed energy attribution.
//!
//! The sweep answers the paper's steady-state question (UIPS/W per
//! frequency); operators also want to watch **where the joules go over
//! time** — per window, per component, while a run is in flight. This
//! module bridges the simulator's [`EnergyProbe`](ntc_sim::EnergyProbe)
//! (raw activity deltas, model-free) and the power models: each
//! [`ActivityWindow`] becomes a [`ClusterMeasurement`], is folded through
//! [`FrequencySweep::evaluate`] into a per-component
//! [`PowerBreakdown`](ntc_power::PowerBreakdown), and integrates into an
//! [`EnergyAccount`] — yielding UIPS and watts time series plus windowed
//! energy attribution (dynamic vs static, cores/LLC/xbar/DRAM/IO).
//!
//! Because every power component is linear in its activity *rate* and the
//! windows partition the run exactly (the engine emits boundary samples),
//! the windowed energy sums back to the end-of-run analytic energy — the
//! closure [`RunEnergy::closure_error`] reports and the differential
//! tests enforce. The one intentional exception: the chip-level DRAM
//! bandwidth cap engages per window, so runs that saturate DRAM in bursts
//! may attribute slightly *less* windowed energy than the whole-run
//! average suggests. That is a fidelity gain, not an error; the closure
//! tolerance (0.1 %) absorbs it for the paper's workloads.
//!
//! Collection is opt-in through a process-wide sink: [`arm_energy`] makes
//! every subsequent [`SimMeasurer`](crate::SimMeasurer) measurement
//! attach an `EnergyProbe` and deposit a [`RunActivity`]; [`take_runs`]
//! drains them. Probes observe only, so armed runs stay bit-identical to
//! plain ones (`ntc-diffcheck`'s `energy-probe` oracle pair).

use crate::config::ServerModel;
use crate::measure::ClusterMeasurement;
use crate::sweep::{FrequencySweep, SweepError};
use ntc_power::{EnergyAccount, PowerWindow, Scope};
use ntc_sim::probe::ENERGY_WINDOW_CYCLES;
use ntc_sim::ActivityWindow;
use ntc_tech::{MegaHertz, OperatingPoint, Seconds};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// The raw activity record of one probed measurement run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunActivity {
    /// Core frequency the run executed at (MHz).
    pub mhz: f64,
    /// The whole-run measurement (the analytic reference).
    pub total: ClusterMeasurement,
    /// Cycles in the measured region.
    pub cycles: u64,
    /// Simulated wall-clock of the measured region, picoseconds.
    pub wall_ps: u64,
    /// The per-window activity deltas, in time order.
    pub windows: Vec<ActivityWindow>,
    /// Samples folded into the last window because the preallocated
    /// buffer filled (resolution loss only; totals are preserved).
    pub coalesced: u64,
}

impl RunActivity {
    /// Cycles the cycle-skip fast path jumped during the run (summed
    /// from the windows, so it closes exactly).
    pub fn skipped_cycles(&self) -> u64 {
        self.windows.iter().map(|w| w.skipped_cycles).sum()
    }

    /// Cycles the engine actually ticked.
    pub fn ticked_cycles(&self) -> u64 {
        self.cycles - self.skipped_cycles()
    }

    /// Fraction of run cycles the fast path skipped.
    pub fn skip_ratio(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.skipped_cycles() as f64 / self.cycles as f64
        }
    }
}

// The process-wide energy sink. Armed measurements deposit their
// RunActivity here; the sweep fans measurements out over worker threads,
// so the buffer is a mutex, and runs land in completion order (sort by
// `mhz` for deterministic presentation).
static SINK_ARMED: AtomicBool = AtomicBool::new(false);
static SINK_WINDOW_CYCLES: AtomicU64 = AtomicU64::new(ENERGY_WINDOW_CYCLES);

fn sink_runs() -> &'static Mutex<Vec<RunActivity>> {
    static RUNS: OnceLock<Mutex<Vec<RunActivity>>> = OnceLock::new();
    RUNS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Arms the energy sink: every subsequent [`SimMeasurer`](crate::SimMeasurer)
/// run attaches an [`EnergyProbe`](ntc_sim::EnergyProbe) with the given
/// window width (cycles; clamped to ≥ 1) and records a [`RunActivity`].
/// Cached measurements never rerun the simulator, so they deposit
/// nothing — arm the sink *before* warming any cache you care about.
pub fn arm_energy(window_cycles: u64) {
    SINK_WINDOW_CYCLES.store(window_cycles.max(1), Ordering::Relaxed);
    SINK_ARMED.store(true, Ordering::Release);
}

/// Disarms the sink and discards any undrained runs.
pub fn disarm_energy() {
    SINK_ARMED.store(false, Ordering::Release);
    sink_runs().lock().clear();
}

/// Whether the sink is currently armed.
pub fn energy_armed() -> bool {
    SINK_ARMED.load(Ordering::Acquire)
}

/// The armed window width in cycles.
pub fn energy_window_cycles() -> u64 {
    SINK_WINDOW_CYCLES.load(Ordering::Relaxed)
}

/// Deposits one probed run into the sink (no-op when disarmed — the
/// check-then-run race on disarm only ever drops a record, never panics).
pub fn record_run(run: RunActivity) {
    if energy_armed() {
        sink_runs().lock().push(run);
    }
}

/// Drains every recorded run, sorted by frequency then start order.
pub fn take_runs() -> Vec<RunActivity> {
    let mut runs = std::mem::take(&mut *sink_runs().lock());
    runs.sort_by(|a, b| a.mhz.total_cmp(&b.mhz));
    runs
}

/// Converts one activity window into the measurement the sweep's power
/// evaluation consumes: counts become rates over the window's simulated
/// duration, mirroring [`ClusterMeasurement::from_stats`].
pub fn window_measurement(window: &ActivityWindow, mhz: f64) -> ClusterMeasurement {
    let secs = window.duration_ps() as f64 * 1e-12;
    let rate = |count: u64| {
        if secs > 0.0 {
            count as f64 / secs
        } else {
            0.0
        }
    };
    let uipc = if window.cycles() == 0 {
        0.0
    } else {
        window.user_instrs as f64 / window.cycles() as f64
    };
    ClusterMeasurement {
        mhz,
        // `SimStats::uips` derives from UIPC and the nominal frequency
        // (not the rounded-period wall clock); mirror it exactly so a
        // single-window run reproduces `from_stats` bit for bit.
        uips: uipc * mhz * 1e6,
        uipc,
        llc_accesses_per_sec: rate(window.llc_accesses()),
        xbar_flits_per_sec: rate(window.xbar_transfers),
        dram_read_bps: rate(window.dram_reads * ntc_sim::LINE_BYTES),
        dram_write_bps: rate(window.dram_writes * ntc_sim::LINE_BYTES),
    }
}

/// One window of the folded energy time series: attribution plus the
/// activity the attribution came from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowEnergy {
    /// The per-component power and UIPS across the window (start/end in
    /// seconds from the run origin).
    pub window: PowerWindow,
    /// Window width in reference-clock cycles.
    pub cycles: u64,
    /// Cycles the fast path skipped inside the window.
    pub skipped_cycles: u64,
    /// Server-scope energy of this window, joules.
    pub server_j: f64,
}

/// The folded energy record of one run: the windowed time series, its
/// integrated account, and the end-of-run analytic reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunEnergy {
    /// Core frequency (MHz).
    pub mhz: f64,
    /// Cycles in the measured region.
    pub cycles: u64,
    /// Cycles the fast path skipped.
    pub skipped_cycles: u64,
    /// Windows coalesced at the probe's buffer capacity.
    pub coalesced: u64,
    /// The windowed power/UIPS time series.
    pub windows: Vec<WindowEnergy>,
    /// Energy integrated window by window.
    pub windowed: EnergyAccount,
    /// Energy from the whole-run measurement held for the whole run —
    /// what the sweep's steady-state math would report.
    pub analytic: EnergyAccount,
}

impl RunEnergy {
    /// Relative server-scope disagreement between the windowed sum and
    /// the analytic total (0 when both are zero).
    pub fn closure_error(&self) -> f64 {
        let w = self.windowed.total(Scope::Server).0;
        let a = self.analytic.total(Scope::Server).0;
        if a == 0.0 {
            if w == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            ((w - a) / a).abs()
        }
    }

    /// Fraction of run cycles the fast path skipped.
    pub fn skip_ratio(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / self.cycles as f64
        }
    }

    /// Per-component `(name, windowed J, analytic J)` rows, in
    /// [`PowerBreakdown`](ntc_power::PowerBreakdown) field order.
    pub fn component_energy(&self) -> [(&'static str, f64, f64); 7] {
        let w = &self.windowed;
        let a = &self.analytic;
        [
            ("cores_dynamic", w.cores_dynamic.0, a.cores_dynamic.0),
            ("cores_static", w.cores_static.0, a.cores_static.0),
            ("llc", w.llc.0, a.llc.0),
            ("xbar", w.xbar.0, a.xbar.0),
            ("io", w.io.0, a.io.0),
            ("dram_background", w.dram_background.0, a.dram_background.0),
            ("dram_dynamic", w.dram_dynamic.0, a.dram_dynamic.0),
        ]
    }
}

/// Folds one probed run through the sweep's power evaluation: every
/// activity window becomes a [`PowerWindow`], integrates into the
/// windowed [`EnergyAccount`], and the whole-run measurement provides
/// the analytic reference.
///
/// # Errors
///
/// [`SweepError::Tech`] if the run's frequency has no reachable
/// operating point under `sweep`'s bias on this server.
pub fn fold_run(
    sweep: &FrequencySweep,
    server: &ServerModel,
    run: &RunActivity,
) -> Result<RunEnergy, SweepError> {
    let op = OperatingPoint::at(
        server.core_power().timing(),
        MegaHertz(run.mhz),
        sweep.bias(),
    )
    .map_err(|source| SweepError::Tech {
        mhz: run.mhz,
        source,
    })?;

    let origin_ps = run.windows.first().map_or(0, |w| w.start_ps);
    let mut windows = Vec::with_capacity(run.windows.len());
    let mut windowed = EnergyAccount::new();
    for w in &run.windows {
        let point = sweep.evaluate(server, op, window_measurement(w, run.mhz));
        let window = PowerWindow {
            start: Seconds((w.start_ps - origin_ps) as f64 * 1e-12),
            end: Seconds((w.end_ps - origin_ps) as f64 * 1e-12),
            power: point.power,
            uips: point.uips,
        };
        windowed.add_window(&window);
        windows.push(WindowEnergy {
            window,
            cycles: w.cycles(),
            skipped_cycles: w.skipped_cycles,
            server_j: window.energy(Scope::Server).0,
        });
    }

    let reference = sweep.evaluate(server, op, run.total);
    let mut analytic = EnergyAccount::new();
    analytic.add_epoch(
        &reference.power,
        Seconds(run.wall_ps as f64 * 1e-12),
        reference.uips,
    );

    Ok(RunEnergy {
        mhz: run.mhz,
        cycles: run.cycles,
        skipped_cycles: run.skipped_cycles(),
        coalesced: run.coalesced,
        windows,
        windowed,
        analytic,
    })
}

/// Folds a batch of runs (e.g. a drained sink), in ascending frequency.
///
/// # Errors
///
/// As for [`fold_run`].
pub fn fold_runs(
    sweep: &FrequencySweep,
    server: &ServerModel,
    runs: &[RunActivity],
) -> Result<Vec<RunEnergy>, SweepError> {
    let mut folded = runs
        .iter()
        .map(|run| fold_run(sweep, server, run))
        .collect::<Result<Vec<_>, _>>()?;
    folded.sort_by(|a, b| a.mhz.total_cmp(&b.mhz));
    Ok(folded)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global; tests that touch it take this lock so
    // the harness's parallel test threads cannot interleave arm/drain.
    fn sink_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    fn synthetic_window(start_cycle: u64, cycles: u64, per_cycle: u64) -> ActivityWindow {
        ActivityWindow {
            start_cycle,
            end_cycle: start_cycle + cycles,
            start_ps: start_cycle * 1000,
            end_ps: (start_cycle + cycles) * 1000,
            user_instrs: cycles * per_cycle,
            instrs: cycles * per_cycle,
            rob_full_cycles: 0,
            llc_hits: cycles / 8,
            llc_misses: cycles / 64,
            xbar_transfers: cycles / 8,
            dram_reads: cycles / 64,
            dram_writes: cycles / 256,
            skipped_cycles: cycles / 4,
        }
    }

    fn server() -> ServerModel {
        crate::config::ServerConfig::paper().build().unwrap()
    }

    #[test]
    fn sink_round_trips_and_disarm_clears() {
        let _guard = sink_lock().lock();
        disarm_energy();
        assert!(!energy_armed());
        arm_energy(0);
        assert!(energy_armed());
        assert_eq!(energy_window_cycles(), 1, "width clamps to >= 1");
        arm_energy(2048);
        assert_eq!(energy_window_cycles(), 2048);
        let run = RunActivity {
            mhz: 1000.0,
            total: window_measurement(&synthetic_window(0, 4096, 2), 1000.0),
            cycles: 4096,
            wall_ps: 4096 * 1000,
            windows: vec![synthetic_window(0, 4096, 2)],
            coalesced: 0,
        };
        record_run(run.clone());
        let drained = take_runs();
        assert_eq!(drained, vec![run]);
        assert!(take_runs().is_empty(), "drained means drained");
        record_run(RunActivity {
            mhz: 500.0,
            ..drained.into_iter().next().unwrap()
        });
        disarm_energy();
        assert!(take_runs().is_empty(), "disarm discards undrained runs");
    }

    #[test]
    fn take_runs_sorts_by_frequency() {
        let _guard = sink_lock().lock();
        disarm_energy();
        arm_energy(1024);
        for mhz in [1500.0, 500.0, 1000.0] {
            record_run(RunActivity {
                mhz,
                total: window_measurement(&synthetic_window(0, 1024, 2), mhz),
                cycles: 1024,
                wall_ps: 1024 * 1000,
                windows: vec![synthetic_window(0, 1024, 2)],
                coalesced: 0,
            });
        }
        let runs = take_runs();
        disarm_energy();
        let freqs: Vec<f64> = runs.iter().map(|r| r.mhz).collect();
        assert_eq!(freqs, vec![500.0, 1000.0, 1500.0]);
    }

    #[test]
    fn single_window_measurement_matches_from_stats_shape() {
        let w = synthetic_window(0, 4096, 2);
        let m = window_measurement(&w, 1000.0);
        assert!((m.uipc - 2.0).abs() < 1e-12);
        assert!((m.uips - 2.0e9).abs() < 1.0);
        let secs = 4096.0 * 1000.0 * 1e-12;
        assert!((m.dram_read_bps - (4096.0 / 64.0) * 64.0 / secs).abs() < 1e-3);
        assert!((m.llc_accesses_per_sec - (512.0 + 64.0) / secs).abs() < 1e-3);
    }

    #[test]
    fn windowed_energy_closes_against_analytic_for_uniform_activity() {
        // Uniform per-cycle activity: every window measures the same
        // rates as the whole run, so linearity makes the windowed sum
        // exactly the analytic total (no DRAM-cap differential).
        let server = server();
        let sweep = FrequencySweep::paper_ladder();
        let windows: Vec<ActivityWindow> = (0..8)
            .map(|i| synthetic_window(i * 4096, 4096, 2))
            .collect();
        let total_w = {
            let mut all = synthetic_window(0, 8 * 4096, 2);
            all.end_ps = 8 * 4096 * 1000;
            all
        };
        let run = RunActivity {
            mhz: 1000.0,
            total: window_measurement(&total_w, 1000.0),
            cycles: 8 * 4096,
            wall_ps: 8 * 4096 * 1000,
            windows,
            coalesced: 0,
        };
        let folded = fold_run(&sweep, &server, &run).unwrap();
        assert_eq!(folded.windows.len(), 8);
        assert!(
            folded.closure_error() < 1e-9,
            "uniform activity must close exactly, got {}",
            folded.closure_error()
        );
        for (name, w, a) in folded.component_energy() {
            assert!(
                (w - a).abs() <= a.abs() * 1e-9 + 1e-12,
                "component {name}: windowed {w} J vs analytic {a} J"
            );
        }
        assert!((folded.skip_ratio() - 0.25).abs() < 1e-12);
        // The UIPS series is flat at the run's throughput.
        for we in &folded.windows {
            assert!((we.window.uips - folded.windows[0].window.uips).abs() < 1.0);
            assert!(we.server_j > 0.0);
        }
    }

    #[test]
    fn unreachable_frequency_reports_a_tech_error() {
        let server = server();
        let sweep = FrequencySweep::paper_ladder();
        let run = RunActivity {
            mhz: 10_000.0,
            total: window_measurement(&synthetic_window(0, 1024, 2), 10_000.0),
            cycles: 1024,
            wall_ps: 1024 * 100,
            windows: vec![synthetic_window(0, 1024, 2)],
            coalesced: 0,
        };
        match fold_run(&sweep, &server, &run) {
            Err(SweepError::Tech { mhz, .. }) => assert!((mhz - 10_000.0).abs() < 1e-9),
            other => panic!("expected a Tech error, got {other:?}"),
        }
    }
}
