//! The near-threshold server study — the paper's primary contribution.
//!
//! `ntc-core` assembles the substrates (device models from [`ntc_tech`],
//! power models from [`ntc_power`], the cluster simulator from [`ntc_sim`]
//! driven by [`ntc_workloads`], SMARTS sampling from [`ntc_sampling`], QoS
//! models from [`ntc_qos`]) into the paper's experiment: sweep the core
//! frequency of a 36-core FD-SOI scale-out server from 100 MHz to 2 GHz
//! and find the energy-efficiency optimum (UIPS/Watt) at three accounting
//! scopes — cores, SoC and server — under QoS constraints.
//!
//! The paper's headline findings, all reproducible from this crate:
//!
//! * cores-only efficiency keeps rising down to the SRAM-limited 0.5 V
//!   floor (Fig. 3a/4a);
//! * adding the frequency-invariant uncore moves the optimum to ≈1 GHz
//!   (Fig. 3b/4b);
//! * adding DRAM background power moves it to ≈1–1.2 GHz (Fig. 3c/4c);
//! * scale-out QoS admits 200–500 MHz operation; VM degradation bounds
//!   admit 500 MHz (4×) / 1 GHz (2×) (Fig. 2).
//!
//! Extension modules implement the discussion section: energy
//! proportionality ([`proportionality`]), body-bias boost/sleep management
//! ([`manager`]) and workload consolidation ([`consolidation`]).
//!
//! # Quickstart
//!
//! ```no_run
//! use ntc_core::{FrequencySweep, MeasurementCache, ServerConfig, SimMeasurer};
//! use ntc_power::Scope;
//! use ntc_workloads::{CloudSuiteApp, WorkloadProfile};
//!
//! let server = ServerConfig::paper().build().unwrap();
//! let profile = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
//! let measurer = MeasurementCache::new(SimMeasurer::fast(profile));
//! let sweep = FrequencySweep::paper_ladder();
//! let result = sweep.run(&server, &measurer).unwrap();
//! let (best, _) = result.optimum(Scope::Server).unwrap();
//! println!("server-scope optimum: {:.0} MHz", best.mhz);
//! ```

pub mod binning;
pub mod config;
pub mod consolidation;
pub mod efficiency;
pub mod governor;
pub mod hetero;
pub mod manager;
pub mod measure;
pub mod observe;
pub mod optimum;
pub mod proportionality;
pub mod report;
pub mod sweep;
pub mod thermal;

pub use binning::{magnification, BinningStats, VariationStudy};
pub use config::{ServerConfig, ServerModel};
pub use consolidation::{ConsolidationPlan, Consolidator};
pub use efficiency::{EfficiencyPoint, SweepResult};
pub use governor::{GovernorPolicy, GovernorReport, QosGovernor};
pub use hetero::{
    iso_power, iso_qos, little_core_power, pareto_frontier, ChipPlan, ClusterPlan, HeteroPoint,
    HeteroSweep,
};
pub use manager::{BiasManager, ManagedPhase, ManagerPolicy};
pub use measure::{
    chip_fingerprint, config_fingerprint, profile_fingerprint, ClusterMeasurement, ClusterMeasurer,
    MeasureError, MeasurementCache, MeasurementKey, MeasurementStore, SimMeasurer, TableMeasurer,
};
pub use observe::{
    arm_energy, disarm_energy, energy_armed, fold_run, fold_runs, take_runs, RunActivity,
    RunEnergy, WindowEnergy,
};
pub use optimum::ConstrainedOptimum;
pub use proportionality::{proportionality_score, UtilizationPoint};
pub use sweep::{FrequencySweep, SweepError, SweepPoint};
pub use thermal::{budget_feasible, max_frequency_within, thermal_solve, ThermalPoint};
