//! Process-variation study: speed binning and body-bias compensation.
//!
//! Paper Sec. II-A, point 4: *"Part of the body bias range can be used to
//! mitigate the effect of variations that are magnified in near-threshold
//! operation, leaving the remaining part available for performance energy
//! trade-off and power management."*
//!
//! This module quantifies both halves of that sentence over a synthesized
//! core population:
//!
//! * **magnification** — a fixed σ(Vth) spreads Fmax a little at nominal
//!   voltage and a lot at 0.5 V (the exponential near-threshold current);
//! * **compensation** — per-core forward bias re-centres slow cores,
//!   recovering frequency yield at the cost of the bias range consumed.

use ntc_tech::{BodyBias, CoreModel, Technology, TechnologyKind, VariationModel, Volts};
use serde::{Deserialize, Serialize};

/// Fmax statistics of a core population at one voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinningStats {
    /// Supply voltage of the measurement.
    pub vdd: Volts,
    /// Population mean Fmax (MHz).
    pub mean_mhz: f64,
    /// Population standard deviation of Fmax (MHz).
    pub sigma_mhz: f64,
    /// Coefficient of variation σ/μ — the "magnification" metric.
    pub cv: f64,
    /// Fraction of cores meeting the target frequency.
    pub yield_at_target: f64,
    /// The target frequency used for the yield figure (MHz).
    pub target_mhz: f64,
}

/// The variation study: population + technology.
#[derive(Debug, Clone)]
pub struct VariationStudy {
    tech: Technology,
    variation: VariationModel,
    population: u32,
}

impl VariationStudy {
    /// A study over `population` cores of the given flavour.
    pub fn new(kind: TechnologyKind, population: u32, seed: u64) -> Self {
        VariationStudy {
            tech: Technology::preset(kind),
            variation: VariationModel::preset(kind, seed),
            population,
        }
    }

    fn fmax_of(&self, sample_idx: u32, vdd: Volts, bias: BodyBias) -> Option<f64> {
        let sample = self.variation.sample(sample_idx);
        let tech = self.variation.apply(&self.tech, sample);
        let core = CoreModel::cortex_a57(tech);
        core.fmax(vdd, bias).ok().map(|f| f.0)
    }

    /// Bins the population at a voltage: the target frequency for yield is
    /// the *typical* (no-variation) core's Fmax — cores slower than typical
    /// fail the bin.
    pub fn bin_at(&self, vdd: Volts) -> BinningStats {
        let typical = CoreModel::cortex_a57(self.tech.clone())
            .fmax(vdd, BodyBias::ZERO)
            .expect("voltage is functional")
            .0;
        let fmaxes: Vec<f64> = (0..self.population)
            .filter_map(|i| self.fmax_of(i, vdd, BodyBias::ZERO))
            .collect();
        let n = fmaxes.len() as f64;
        let mean = fmaxes.iter().sum::<f64>() / n;
        let var = fmaxes.iter().map(|f| (f - mean).powi(2)).sum::<f64>() / n;
        let meeting = fmaxes.iter().filter(|&&f| f >= typical).count() as f64;
        BinningStats {
            vdd,
            mean_mhz: mean,
            sigma_mhz: var.sqrt(),
            cv: var.sqrt() / mean,
            yield_at_target: meeting / n,
            target_mhz: typical,
        }
    }

    /// Yield at the typical-core target after per-core body-bias
    /// compensation (each core applies the clipped bias that re-centres
    /// its Vth), plus the mean forward bias spent.
    pub fn yield_with_compensation(&self, vdd: Volts) -> (f64, f64) {
        let typical = CoreModel::cortex_a57(self.tech.clone())
            .fmax(vdd, BodyBias::ZERO)
            .expect("voltage is functional")
            .0;
        let mut meeting = 0u32;
        let mut bias_spent = 0.0;
        let mut counted = 0u32;
        for i in 0..self.population {
            let sample = self.variation.sample(i);
            let (bias, _residual) = self.variation.compensating_bias(&self.tech, sample);
            let tech = self.variation.apply(&self.tech, sample);
            let core = CoreModel::cortex_a57(tech);
            if let Ok(f) = core.fmax(vdd, bias) {
                counted += 1;
                bias_spent += bias.signed().0.max(0.0);
                // Compensation must recover at least 99% of typical speed.
                if f.0 >= typical * 0.99 {
                    meeting += 1;
                }
            }
        }
        (
            f64::from(meeting) / f64::from(counted.max(1)),
            bias_spent / f64::from(counted.max(1)),
        )
    }
}

/// Convenience: the near-threshold magnification ratio — CV at `low` over
/// CV at `high` voltage.
pub fn magnification(study: &VariationStudy, low: Volts, high: Volts) -> f64 {
    study.bin_at(low).cv / study.bin_at(high).cv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study(kind: TechnologyKind) -> VariationStudy {
        VariationStudy::new(kind, 2000, 7)
    }

    #[test]
    fn variation_is_magnified_near_threshold() {
        let s = study(TechnologyKind::FdSoi28);
        let mag = magnification(&s, Volts(0.5), Volts(1.1));
        assert!(
            mag > 2.0,
            "CV at 0.5 V should be several times the 1.1 V CV, got {mag:.2}"
        );
    }

    #[test]
    fn fdsoi_spreads_less_than_bulk() {
        let f = study(TechnologyKind::FdSoi28).bin_at(Volts(0.8));
        let b = study(TechnologyKind::Bulk28).bin_at(Volts(0.8));
        assert!(
            f.cv < b.cv,
            "no-RDF FD-SOI must bin tighter: {:.4} vs {:.4}",
            f.cv,
            b.cv
        );
    }

    #[test]
    fn uncompensated_yield_is_about_half() {
        // The target is the typical core, so ~half the Gaussian fails.
        let s = study(TechnologyKind::FdSoi28);
        let b = s.bin_at(Volts(0.6));
        assert!(
            (b.yield_at_target - 0.5).abs() < 0.06,
            "uncompensated yield ~50%, got {:.2}",
            b.yield_at_target
        );
    }

    #[test]
    fn body_bias_compensation_recovers_yield() {
        let s = study(TechnologyKind::FdSoi28);
        let before = s.bin_at(Volts(0.6)).yield_at_target;
        let (after, mean_bias) = s.yield_with_compensation(Volts(0.6));
        assert!(
            after > 0.95,
            "compensated yield should approach 100%, got {after:.3}"
        );
        assert!(after > before + 0.3);
        // And the bias budget spent is a fraction of the 3 V range,
        // leaving room for the performance/energy knob.
        assert!(
            mean_bias < 0.6,
            "mean compensation bias should be small, got {mean_bias:.2} V"
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let s = study(TechnologyKind::FdSoi28);
        let b = s.bin_at(Volts(0.8));
        assert!(b.sigma_mhz > 0.0);
        assert!((b.cv - b.sigma_mhz / b.mean_mhz).abs() < 1e-12);
        assert!(b.mean_mhz > 0.0 && b.target_mhz > 0.0);
    }
}
