//! Thermal and power-budget feasibility of sweep points.
//!
//! The paper's chip carries a **100 W power budget** (Sec. II-B), and its
//! discussion contrasts *power/thermal-bound* operation with the *energy
//! bound* regime near threshold: "maximum energy-efficiency at low power
//! operating point has the advantage of reducing the overall system TDP —
//! easing the thermal design and dark-silicon effects". This module closes
//! that loop:
//!
//! * [`budget_feasible`] filters a sweep by the configured power budget —
//!   the classic TDP constraint that high-frequency points violate;
//! * [`thermal_solve`] runs each sweep point through the
//!   [`ntc_tech::ThermalModel`] leakage-temperature fixed point, reporting
//!   the converged die temperature and the leakage uplift relative to the
//!   nominal-temperature accounting.

use crate::config::ServerModel;
use crate::efficiency::SweepResult;
use crate::sweep::SweepPoint;
use ntc_power::CoreActivity;
use ntc_tech::{Kelvin, ThermalModel, Watts};
use serde::{Deserialize, Serialize};

/// One sweep point's thermal solution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalPoint {
    /// Core frequency (MHz).
    pub mhz: f64,
    /// Converged die temperature.
    pub temperature: Kelvin,
    /// Server power at the converged temperature.
    pub power: Watts,
    /// Ratio of converged server power to the nominal-temperature figure
    /// (the leakage-feedback uplift).
    pub uplift: f64,
    /// Whether the junction limit holds.
    pub within_limits: bool,
}

/// The sweep points whose *nominal* server power fits a budget, in ladder
/// order. The paper's 100 W chip budget is `server.config().power_budget`.
pub fn budget_feasible(result: &SweepResult, budget: Watts) -> Vec<&SweepPoint> {
    result
        .points()
        .iter()
        .filter(|p| p.power.soc() <= budget)
        .collect()
}

/// The highest ladder frequency whose SoC power fits the chip budget.
pub fn max_frequency_within(result: &SweepResult, budget: Watts) -> Option<f64> {
    budget_feasible(result, budget).last().map(|p| p.mhz)
}

/// Solves the leakage-temperature fixed point for every sweep point.
///
/// Only the cores' leakage responds to temperature (the uncore models are
/// bottom-line constants and DRAM has its own thermal envelope); dynamic
/// power and traffic are held at the sweep's measurement.
pub fn thermal_solve(
    server: &ServerModel,
    result: &SweepResult,
    thermal: &ThermalModel,
) -> Vec<ThermalPoint> {
    let n_cores = f64::from(server.cores());
    result
        .points()
        .iter()
        .map(|p| {
            let fixed = p.power.server() - p.power.cores_static;
            let solve = thermal.steady_state(|t| {
                let leak = server
                    .core_power()
                    .leakage_model()
                    .power_with_exposure(p.op.vdd, p.op.bias, t, 1.0)
                    * CoreActivity::BUSY.duty
                    * n_cores;
                fixed + leak
            });
            ThermalPoint {
                mhz: p.mhz,
                temperature: solve.temperature,
                power: solve.power,
                uplift: solve.power / p.power.server(),
                within_limits: solve.within_limits,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crate::measure::TableMeasurer;
    use crate::sweep::FrequencySweep;

    fn setup() -> (ServerModel, SweepResult) {
        let server = ServerConfig::paper().build().unwrap();
        let m = TableMeasurer::synthetic(3.2, 1.6);
        let result = FrequencySweep::paper_ladder().run(&server, &m).unwrap();
        (server, result)
    }

    #[test]
    fn the_100w_budget_caps_the_top_of_the_ladder() {
        let (server, result) = setup();
        let budget = server.config().power_budget;
        let top = max_frequency_within(&result, budget).unwrap();
        assert!(
            (1400.0..2000.0).contains(&top),
            "the 100 W chip budget must exclude the very top, got {top}"
        );
        // Every near-threshold point fits with room to spare.
        let feasible = budget_feasible(&result, budget);
        assert!(feasible.iter().any(|p| p.mhz <= 200.0));
    }

    #[test]
    fn near_threshold_barely_warms_the_die() {
        let (server, result) = setup();
        let thermal = ThermalModel::server_air_cooled();
        let pts = thermal_solve(&server, &result, &thermal);
        let nt = &pts[0];
        let top = pts.last().unwrap();
        assert!(
            nt.temperature.to_celsius().0 < 45.0,
            "100 MHz die temperature {:.1}",
            nt.temperature.to_celsius().0
        );
        assert!(
            top.temperature.0 > nt.temperature.0 + 10.0,
            "full speed runs meaningfully hotter"
        );
        assert!(pts.iter().all(|p| p.within_limits));
    }

    #[test]
    fn leakage_uplift_grows_with_power() {
        let (server, result) = setup();
        let thermal = ThermalModel::server_air_cooled();
        let pts = thermal_solve(&server, &result, &thermal);
        let nt = &pts[0];
        let top = pts.last().unwrap();
        assert!(top.uplift > nt.uplift, "{} vs {}", top.uplift, nt.uplift);
        assert!(top.uplift >= 1.0 && top.uplift < 1.5);
    }
}
