//! Closed-loop QoS-aware frequency governor.
//!
//! The paper's conclusion opens "new research challenges" in operating
//! near-threshold servers under real, time-varying load. This module
//! implements the natural first controller: per epoch, given the offered
//! load, pick the **lowest** frequency whose queueing-inflated tail
//! latency still meets the QoS budget.
//!
//! The latency model composes the paper's own UIPS-ratio scaling with an
//! M/M/1 utilization inflation: at frequency `f` the server's capacity is
//! `UIPS(f)/UIPS(f_max)` of nominal, an offered load `L` yields utilization
//! `ρ = L/capacity`, and
//!
//! ```text
//! p99(f, L) = L99_base · (UIPS_base / UIPS(f)) / (1 − ρ)
//! ```
//!
//! Energy is accounted from the sweep's power breakdowns; the payoff is
//! measured against the static-maximum-frequency baseline.

use crate::efficiency::SweepResult;
use ntc_tech::DvfsTransitionModel;
use ntc_workloads::{QosTarget, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// Governor policy under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GovernorPolicy {
    /// Always run at the highest available frequency (the baseline).
    StaticMax,
    /// Scale frequency proportionally to load (classic `ondemand`-style),
    /// oblivious to the latency budget.
    LoadProportional,
    /// Pick the lowest frequency whose predicted p99 meets QoS.
    QosAware,
}

/// One epoch of a governed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernedEpoch {
    /// Offered load (fraction of nominal capacity).
    pub load: f64,
    /// Chosen frequency (MHz).
    pub mhz: f64,
    /// Predicted normalized p99 at the choice (≤ 1 meets QoS).
    pub normalized_p99: f64,
    /// Server power at the choice (W).
    pub watts: f64,
}

/// Aggregate outcome of a governed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernorReport {
    /// Policy used.
    pub policy: GovernorPolicy,
    /// Per-epoch decisions.
    pub epochs: Vec<GovernedEpoch>,
    /// Mean server power across epochs (W).
    pub mean_watts: f64,
    /// Epochs whose predicted p99 exceeded the budget while a feasible
    /// choice existed (a genuine governor failure).
    pub violations: u32,
    /// Epochs where even the maximum frequency saturated (offered load at
    /// or beyond capacity headroom) — an overload condition no frequency
    /// choice can fix.
    pub saturated: u32,
    /// Operating-point changes across the run.
    pub transitions: u32,
    /// Total wall-clock time lost to stalling DVFS transitions, seconds.
    pub transition_stall_seconds: f64,
}

impl GovernorReport {
    /// Energy relative to another report (ratio of mean power).
    pub fn energy_ratio_vs(&self, other: &GovernorReport) -> f64 {
        self.mean_watts / other.mean_watts
    }
}

/// The governor: a sweep (capacity + power per frequency) plus a QoS
/// contract.
#[derive(Debug, Clone)]
pub struct QosGovernor<'a> {
    result: &'a SweepResult,
    profile: &'a WorkloadProfile,
    /// Utilization cap: never plan above this ρ (stability headroom).
    rho_cap: f64,
}

impl<'a> QosGovernor<'a> {
    /// Creates a governor over a sweep for a tail-latency workload.
    ///
    /// # Panics
    ///
    /// Panics if the profile carries no tail-latency QoS.
    pub fn new(result: &'a SweepResult, profile: &'a WorkloadProfile) -> Self {
        assert!(
            matches!(profile.qos, QosTarget::TailLatency { .. }),
            "the governor controls latency-critical workloads"
        );
        QosGovernor {
            result,
            profile,
            rho_cap: 0.9,
        }
    }

    fn base_uips(&self) -> f64 {
        self.result
            .points()
            .last()
            .expect("sweep is non-empty")
            .uips
    }

    /// Predicted p99 normalized to the budget at `(mhz, load)`; `None` if
    /// the point saturates (ρ ≥ cap).
    pub fn predicted_p99(&self, mhz: f64, load: f64) -> Option<f64> {
        let point = self.result.at(mhz)?;
        let base = self.base_uips();
        let capacity = point.uips / base;
        let rho = load / capacity;
        if rho >= self.rho_cap {
            return None;
        }
        let scale = base / point.uips;
        Some(self.profile.baseline_l99_norm * scale / (1.0 - rho))
    }

    /// Picks the epoch decision under a policy.
    pub fn decide(&self, policy: GovernorPolicy, load: f64) -> GovernedEpoch {
        let points = self.result.points();
        let top = points.last().expect("sweep is non-empty");
        let pick = |mhz: f64| -> GovernedEpoch {
            let p = self.result.at(mhz).expect("decisions stay on the ladder");
            GovernedEpoch {
                load,
                mhz,
                normalized_p99: self.predicted_p99(mhz, load).unwrap_or(f64::INFINITY),
                watts: p.power.server().0,
            }
        };
        match policy {
            GovernorPolicy::StaticMax => pick(top.mhz),
            GovernorPolicy::LoadProportional => {
                let target = load * top.mhz;
                let mhz = points
                    .iter()
                    .map(|p| p.mhz)
                    .find(|&m| m >= target)
                    .unwrap_or(top.mhz);
                pick(mhz)
            }
            GovernorPolicy::QosAware => {
                let mhz = points
                    .iter()
                    .map(|p| p.mhz)
                    .find(|&m| self.predicted_p99(m, load).is_some_and(|p| p <= 1.0))
                    .unwrap_or(top.mhz);
                pick(mhz)
            }
        }
    }

    /// Whether *any* frequency on the ladder meets QoS at this load.
    pub fn feasible(&self, load: f64) -> bool {
        let top = self.result.points().last().expect("sweep is non-empty");
        self.predicted_p99(top.mhz, load).is_some_and(|p| p <= 1.0)
    }

    /// Runs a load trace under a policy.
    pub fn run(&self, policy: GovernorPolicy, trace: &[f64]) -> GovernorReport {
        let epochs: Vec<GovernedEpoch> = trace
            .iter()
            .map(|&load| self.decide(policy, load.clamp(0.0, 1.0)))
            .collect();
        let mean_watts = if epochs.is_empty() {
            0.0
        } else {
            epochs.iter().map(|e| e.watts).sum::<f64>() / epochs.len() as f64
        };
        let mut violations = 0;
        let mut saturated = 0;
        for e in &epochs {
            if !self.feasible(e.load) {
                // Overload: no frequency choice meets the budget.
                saturated += 1;
            } else if e.normalized_p99 > 1.0 {
                violations += 1;
            }
        }
        // DVFS transition accounting between consecutive epochs.
        let dvfs = DvfsTransitionModel::server_class();
        let mut transitions = 0;
        let mut transition_stall_seconds = 0.0;
        for w in epochs.windows(2) {
            if (w[0].mhz - w[1].mhz).abs() > 1e-9 {
                transitions += 1;
                let from = self.result.at(w[0].mhz).expect("ladder point").op;
                let to = self.result.at(w[1].mhz).expect("ladder point").op;
                let t = dvfs.transition(from, to);
                if t.stalls {
                    transition_stall_seconds += t.duration_seconds().0;
                }
            }
        }
        GovernorReport {
            policy,
            epochs,
            mean_watts,
            violations,
            saturated,
            transitions,
            transition_stall_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crate::measure::TableMeasurer;
    use crate::sweep::FrequencySweep;
    use ntc_workloads::{CloudSuiteApp, DiurnalLoad};

    fn setup() -> (SweepResult, WorkloadProfile) {
        let server = ServerConfig::paper().build().unwrap();
        let m = TableMeasurer::synthetic(3.2, 1.6);
        let result = FrequencySweep::paper_ladder().run(&server, &m).unwrap();
        (
            result,
            WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch),
        )
    }

    #[test]
    fn qos_aware_saves_energy_without_violations() {
        let (result, profile) = setup();
        let gov = QosGovernor::new(&result, &profile);
        let trace = DiurnalLoad::interactive_service(1).trace(24.0, 288);
        let fixed = gov.run(GovernorPolicy::StaticMax, &trace);
        let qos = gov.run(GovernorPolicy::QosAware, &trace);
        assert_eq!(qos.violations, 0, "the QoS-aware governor never violates");
        // Flash crowds occasionally exceed even the max-frequency
        // capacity; that saturation hits every policy identically.
        assert_eq!(qos.saturated, fixed.saturated);
        assert!(qos.saturated < trace.len() as u32 / 10);
        let ratio = qos.energy_ratio_vs(&fixed);
        assert!(
            ratio < 0.75,
            "diurnal load should yield >25% energy savings, got ratio {ratio:.3}"
        );
    }

    #[test]
    fn load_proportional_can_violate_qos() {
        // Ondemand-style scaling ignores queueing inflation: at moderate
        // load and low frequency the tail blows through the budget for a
        // tight-budget app like Data Serving.
        let server = ServerConfig::paper().build().unwrap();
        let m = TableMeasurer::synthetic(3.2, 1.6);
        let result = FrequencySweep::paper_ladder().run(&server, &m).unwrap();
        let profile = WorkloadProfile::cloudsuite(CloudSuiteApp::DataServing);
        let gov = QosGovernor::new(&result, &profile);
        let trace = vec![0.5; 50];
        let naive = gov.run(GovernorPolicy::LoadProportional, &trace);
        let qos = gov.run(GovernorPolicy::QosAware, &trace);
        assert_eq!(qos.violations, 0);
        assert!(
            naive.violations > 0 || naive.mean_watts >= qos.mean_watts,
            "naive scaling either violates QoS or cannot beat the QoS-aware pick"
        );
    }

    #[test]
    fn dvfs_transition_overhead_is_negligible_at_diurnal_granularity() {
        let (result, profile) = setup();
        let gov = QosGovernor::new(&result, &profile);
        let trace = DiurnalLoad::interactive_service(3).trace(24.0, 288);
        let report = gov.run(GovernorPolicy::QosAware, &trace);
        assert!(report.transitions > 10, "the governor does move around");
        // 24 h in seconds vs total stall time: microseconds per 5-minute
        // epoch are noise.
        let fraction = report.transition_stall_seconds / (24.0 * 3600.0);
        assert!(
            fraction < 1e-5,
            "transition overhead must be negligible, got {fraction:.2e}"
        );
    }

    #[test]
    fn decisions_track_load() {
        let (result, profile) = setup();
        let gov = QosGovernor::new(&result, &profile);
        let low = gov.decide(GovernorPolicy::QosAware, 0.1);
        let high = gov.decide(GovernorPolicy::QosAware, 0.8);
        assert!(high.mhz > low.mhz, "{} vs {}", high.mhz, low.mhz);
        assert!(low.normalized_p99 <= 1.0 && high.normalized_p99 <= 1.0);
    }

    #[test]
    fn saturation_falls_back_to_max_frequency() {
        let (result, profile) = setup();
        let gov = QosGovernor::new(&result, &profile);
        let e = gov.decide(GovernorPolicy::QosAware, 0.999);
        assert!((e.mhz - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn predicted_p99_inflates_with_load() {
        let (result, profile) = setup();
        let gov = QosGovernor::new(&result, &profile);
        let quiet = gov.predicted_p99(1000.0, 0.05).unwrap();
        let busy = gov.predicted_p99(1000.0, 0.5).unwrap();
        assert!(busy > quiet);
        assert!(gov.predicted_p99(200.0, 0.9).is_none(), "saturated");
    }

    #[test]
    #[should_panic(expected = "latency-critical")]
    fn vm_profiles_are_rejected() {
        let (result, _) = setup();
        let vm = WorkloadProfile::banking_low_mem(4.0);
        let _ = QosGovernor::new(&result, &vm);
    }
}
