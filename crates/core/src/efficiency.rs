//! Three-scope energy-efficiency analysis (Figures 3 and 4).
//!
//! Efficiency is the paper's `UIPS / Watt`, evaluated against three power
//! denominators: cores only, the SoC, and the whole server. The same
//! throughput numerator shifts its optimum rightward as ever more
//! frequency-invariant power is included — the paper's central result.

use crate::sweep::SweepPoint;
use ntc_power::Scope;
use serde::{Deserialize, Serialize};

/// Efficiency of one frequency point at every scope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyPoint {
    /// Core frequency in MHz.
    pub mhz: f64,
    /// Chip UIPS.
    pub uips: f64,
    /// UIPS per watt of core power.
    pub cores: f64,
    /// UIPS per watt of SoC power.
    pub soc: f64,
    /// UIPS per watt of server power.
    pub server: f64,
}

impl EfficiencyPoint {
    /// Efficiency at a scope.
    pub fn at_scope(&self, scope: Scope) -> f64 {
        match scope {
            Scope::Cores => self.cores,
            Scope::Soc => self.soc,
            Scope::Server => self.server,
        }
    }
}

/// The outcome of a frequency sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Wraps sweep points (sorted by frequency).
    ///
    /// # Panics
    ///
    /// Panics on an empty point set.
    pub fn new(mut points: Vec<SweepPoint>) -> Self {
        assert!(!points.is_empty(), "a sweep needs at least one point");
        points.sort_by(|a, b| a.mhz.partial_cmp(&b.mhz).expect("finite frequencies"));
        SweepResult { points }
    }

    /// The evaluated points, ascending in frequency.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// The efficiency series (one row per frequency).
    pub fn efficiency(&self) -> Vec<EfficiencyPoint> {
        self.points
            .iter()
            .map(|p| EfficiencyPoint {
                mhz: p.mhz,
                uips: p.uips,
                cores: p.uips / p.power.cores().0,
                soc: p.uips / p.power.soc().0,
                server: p.uips / p.power.server().0,
            })
            .collect()
    }

    /// The most efficient point at a scope: `(efficiency_point, sweep_point)`.
    pub fn optimum(&self, scope: Scope) -> Option<(EfficiencyPoint, &SweepPoint)> {
        self.efficiency()
            .into_iter()
            .zip(self.points.iter())
            .max_by(|(a, _), (b, _)| {
                a.at_scope(scope)
                    .partial_cmp(&b.at_scope(scope))
                    .expect("finite efficiencies")
            })
    }

    /// The `(mhz, uips)` samples, as consumed by the QoS models.
    pub fn uips_samples(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|p| (p.mhz, p.uips)).collect()
    }

    /// The point at a frequency, if evaluated.
    pub fn at(&self, mhz: f64) -> Option<&SweepPoint> {
        self.points.iter().find(|p| (p.mhz - mhz).abs() < 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crate::measure::TableMeasurer;
    use crate::sweep::FrequencySweep;

    fn result() -> SweepResult {
        let server = ServerConfig::paper().build().unwrap();
        let m = TableMeasurer::synthetic(3.2, 1.6);
        FrequencySweep::paper_ladder().run(&server, &m).unwrap()
    }

    #[test]
    fn efficiency_series_is_consistent() {
        let r = result();
        for (e, p) in r.efficiency().iter().zip(r.points()) {
            assert!(e.cores >= e.soc && e.soc >= e.server);
            assert!((e.cores - p.uips / p.power.cores().0).abs() < 1e-9);
        }
    }

    #[test]
    fn cores_efficiency_is_monotone_decreasing_with_frequency() {
        // Paper Fig. 3a: within the functional range, the lower the
        // frequency, the higher the cores-only efficiency.
        let r = result();
        let eff = r.efficiency();
        for w in eff.windows(2) {
            assert!(
                w[0].cores > w[1].cores,
                "cores efficiency must fall with frequency: {} vs {} at {} MHz",
                w[0].cores,
                w[1].cores,
                w[1].mhz
            );
        }
    }

    #[test]
    fn soc_efficiency_has_an_interior_peak() {
        let r = result();
        let eff = r.efficiency();
        let peak = r.optimum(ntc_power::Scope::Soc).unwrap().0;
        assert!(peak.mhz > eff.first().unwrap().mhz);
        assert!(peak.mhz < eff.last().unwrap().mhz);
    }

    #[test]
    fn uips_samples_and_lookup() {
        let r = result();
        let samples = r.uips_samples();
        assert_eq!(samples.len(), r.points().len());
        assert!(r.at(1000.0).is_some());
        assert!(r.at(1234.0).is_none());
    }
}
