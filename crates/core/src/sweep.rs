//! The frequency-sweep engine.
//!
//! For each frequency on the ladder: find the minimum supply voltage,
//! measure the cluster's throughput and traffic, scale to the full chip,
//! and assemble the per-component power breakdown. The result feeds the
//! three-scope efficiency analysis of Figures 3 and 4.
//!
//! Ladder points are independent, so [`FrequencySweep::run`] fans the
//! measurements out over scoped worker threads and reassembles the points
//! in ladder order — results are bit-identical to [`FrequencySweep::run_serial`]
//! regardless of thread timing.

use crate::config::ServerModel;
use crate::efficiency::SweepResult;
use crate::measure::{ClusterMeasurement, ClusterMeasurer, MeasureError};
use ntc_power::{CoreActivity, DramTraffic, PowerBreakdown};
use ntc_tech::{BodyBias, MegaHertz, OperatingPoint, TechError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One worker chunk's batched ladder measurement, tagged with the chunk
/// index so [`FrequencySweep::run_batched`] can reassemble ladder order.
type BatchSlot = (usize, Result<Vec<ClusterMeasurement>, MeasureError>);

/// One evaluated frequency point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Core frequency in MHz.
    pub mhz: f64,
    /// The DVFS operating point (voltage, bias).
    pub op: OperatingPoint,
    /// Chip-level user instructions per second (cluster UIPS × clusters).
    pub uips: f64,
    /// The cluster measurement behind this point.
    pub cluster: ClusterMeasurement,
    /// Per-component power at this point.
    pub power: PowerBreakdown,
}

/// Errors from a sweep.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SweepError {
    /// No frequency on the ladder was reachable.
    NoReachablePoints,
    /// A technology-model error at a specific frequency.
    Tech {
        /// The frequency being evaluated.
        mhz: f64,
        /// The underlying error.
        source: TechError,
    },
    /// A measurement failure at a specific frequency.
    Measure {
        /// The frequency being measured.
        mhz: f64,
        /// The underlying error.
        source: MeasureError,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::NoReachablePoints => write!(f, "no ladder frequency was reachable"),
            SweepError::Tech { mhz, source } => {
                write!(f, "technology model failed at {mhz} MHz: {source}")
            }
            SweepError::Measure { mhz, source } => {
                write!(f, "measurement failed at {mhz} MHz: {source}")
            }
        }
    }
}

impl Error for SweepError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SweepError::Tech { source, .. } => Some(source),
            SweepError::Measure { source, .. } => Some(source),
            SweepError::NoReachablePoints => None,
        }
    }
}

/// The sweep driver: a frequency ladder plus evaluation policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencySweep {
    frequencies: Vec<f64>,
    bias: BodyBias,
    activity: CoreActivity,
}

impl FrequencySweep {
    /// The paper's ladder: 100 MHz to 2 GHz in 100 MHz steps, no body
    /// bias, busy cores.
    pub fn paper_ladder() -> Self {
        FrequencySweep {
            frequencies: (1..=20).map(|i| f64::from(i) * 100.0).collect(),
            bias: BodyBias::ZERO,
            activity: CoreActivity::BUSY,
        }
    }

    /// A sweep over explicit frequencies (MHz).
    ///
    /// # Panics
    ///
    /// Panics if `frequencies` is empty or contains non-positive values.
    pub fn over(frequencies: Vec<f64>) -> Self {
        assert!(!frequencies.is_empty(), "empty frequency ladder");
        assert!(
            frequencies.iter().all(|f| f.is_finite() && *f > 0.0),
            "frequencies must be positive"
        );
        FrequencySweep {
            frequencies,
            bias: BodyBias::ZERO,
            activity: CoreActivity::BUSY,
        }
    }

    /// Applies a fixed body bias at every point (builder style).
    pub fn with_bias(mut self, bias: BodyBias) -> Self {
        self.bias = bias;
        self
    }

    /// Overrides the core activity (builder style).
    pub fn with_activity(mut self, activity: CoreActivity) -> Self {
        self.activity = activity;
        self
    }

    /// The ladder.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// The body bias applied at every point.
    pub fn bias(&self) -> BodyBias {
        self.bias
    }

    /// The core activity assumed at every point.
    pub fn activity(&self) -> CoreActivity {
        self.activity
    }

    /// Runs the sweep: measure each reachable frequency and assemble its
    /// power breakdown. Unreachable frequencies (beyond the rated voltage
    /// or below the SRAM floor) are skipped, mirroring the silicon.
    ///
    /// Measurements fan out over scoped worker threads (one per available
    /// core, capped by the ladder length); points are collected back in
    /// ladder order, so the result is identical to
    /// [`FrequencySweep::run_serial`] for any deterministic measurer.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::NoReachablePoints`] if nothing on the ladder
    /// was functional, [`SweepError::Tech`] for unexpected model failures,
    /// or [`SweepError::Measure`] if the measurer failed (the lowest
    /// failing ladder frequency is reported).
    pub fn run<M: ClusterMeasurer + Sync>(
        &self,
        server: &ServerModel,
        measurer: &M,
    ) -> Result<SweepResult, SweepError> {
        let _span = ntc_telemetry::trace::span_cat("sweep", "sweep.run");
        let cache_before = cache_counts();
        let ops = self.reachable_ops(server)?;
        let workers = worker_count(ops.len());
        if workers <= 1 {
            let result = self.finish(server, measurer, ops);
            log_cache_use(cache_before);
            return result;
        }

        // Work-stealing fan-out: each worker pulls the next unclaimed
        // ladder index, so slow points (low frequencies simulate more
        // wall-clock per cycle) don't serialize behind a static split.
        let next = AtomicUsize::new(0);
        let measured: Mutex<Vec<(usize, Result<ClusterMeasurement, MeasureError>)>> =
            Mutex::new(Vec::with_capacity(ops.len()));
        crossbeam::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(mhz, _)) = ops.get(i) else { break };
                    let result = {
                        let _span = ntc_telemetry::trace::span_with("sweep", || {
                            format!("ladder {mhz} MHz")
                        });
                        measurer.measure(mhz)
                    };
                    measured.lock().push((i, result));
                });
            }
        })
        .expect("sweep worker threads");

        let mut measured = measured.into_inner();
        measured.sort_unstable_by_key(|&(i, _)| i);
        let mut points = Vec::with_capacity(ops.len());
        for (i, result) in measured {
            let (mhz, op) = ops[i];
            let cluster = result.map_err(|source| SweepError::Measure { mhz, source })?;
            points.push(self.evaluate(server, op, cluster));
        }
        log_cache_use(cache_before);
        Ok(SweepResult::new(points))
    }

    /// Runs the sweep with **batched ladder measurement**: the reachable
    /// ladder is split into contiguous per-worker chunks, and each worker
    /// measures its whole chunk through one
    /// [`ClusterMeasurer::measure_ladder`] call — for
    /// [`SimMeasurer`](crate::measure::SimMeasurer) that is one warm-up
    /// per chunk instead of one per point, a several-fold cut in
    /// simulated cycles on the paper's 20-point ladder.
    ///
    /// Fidelity contract: with a measurer whose `measure_ladder` is the
    /// per-point default (e.g.
    /// [`TableMeasurer`](crate::measure::TableMeasurer) or a
    /// [`MeasurementCache`](crate::measure::MeasurementCache)), the
    /// result is identical to
    /// [`FrequencySweep::run`]. With a true batched backend the points
    /// are statistically equivalent but not bit-identical to per-point
    /// measurement, and they bypass the measurement cache by design.
    ///
    /// # Errors
    ///
    /// As for [`FrequencySweep::run`]. A batch failure is attributed to
    /// the lowest frequency of its chunk (batched backends validate the
    /// whole chunk up front).
    pub fn run_batched<M: ClusterMeasurer + Sync>(
        &self,
        server: &ServerModel,
        measurer: &M,
    ) -> Result<SweepResult, SweepError> {
        let _span = ntc_telemetry::trace::span_cat("sweep", "sweep.run_batched");
        let ops = self.reachable_ops(server)?;
        let workers = worker_count(ops.len());
        let chunk_len = ops.len().div_ceil(workers);
        let chunks: Vec<&[(f64, OperatingPoint)]> = ops.chunks(chunk_len).collect();

        let measured: Mutex<Vec<BatchSlot>> = Mutex::new(Vec::with_capacity(chunks.len()));
        crossbeam::scope(|s| {
            for (ci, chunk) in chunks.iter().enumerate() {
                let measured = &measured;
                s.spawn(move || {
                    let freqs: Vec<f64> = chunk.iter().map(|&(mhz, _)| mhz).collect();
                    let result = {
                        let _span = ntc_telemetry::trace::span_with("sweep", || {
                            format!(
                                "ladder batch {:.0}-{:.0} MHz",
                                freqs[0],
                                freqs[freqs.len() - 1]
                            )
                        });
                        measurer.measure_ladder(&freqs)
                    };
                    measured.lock().push((ci, result));
                });
            }
        })
        .expect("sweep worker threads");

        let mut measured = measured.into_inner();
        measured.sort_unstable_by_key(|&(ci, _)| ci);
        let mut points = Vec::with_capacity(ops.len());
        for (ci, result) in measured {
            let chunk = chunks[ci];
            let batch = result.map_err(|source| SweepError::Measure {
                mhz: chunk
                    .iter()
                    .map(|&(mhz, _)| mhz)
                    .fold(f64::INFINITY, f64::min),
                source,
            })?;
            debug_assert_eq!(batch.len(), chunk.len());
            for (&(_, op), cluster) in chunk.iter().zip(batch) {
                points.push(self.evaluate(server, op, cluster));
            }
        }
        Ok(SweepResult::new(points))
    }

    /// Runs the sweep on the calling thread only. Same contract and same
    /// result as [`FrequencySweep::run`]; useful as a determinism baseline
    /// and for measurers that are not [`Sync`].
    ///
    /// # Errors
    ///
    /// As for [`FrequencySweep::run`].
    pub fn run_serial<M: ClusterMeasurer>(
        &self,
        server: &ServerModel,
        measurer: &M,
    ) -> Result<SweepResult, SweepError> {
        let _span = ntc_telemetry::trace::span_cat("sweep", "sweep.run");
        let cache_before = cache_counts();
        let ops = self.reachable_ops(server)?;
        let result = self.finish(server, measurer, ops);
        log_cache_use(cache_before);
        result
    }

    /// Resolves the DVFS operating point for every reachable ladder
    /// frequency, preserving ladder order.
    fn reachable_ops(
        &self,
        server: &ServerModel,
    ) -> Result<Vec<(f64, OperatingPoint)>, SweepError> {
        let mut ops = Vec::with_capacity(self.frequencies.len());
        for &mhz in &self.frequencies {
            match OperatingPoint::at(server.core_power().timing(), MegaHertz(mhz), self.bias) {
                Ok(op) => ops.push((mhz, op)),
                Err(TechError::FrequencyUnreachable { .. })
                | Err(TechError::FrequencyTooLow { .. }) => {}
                Err(source) => return Err(SweepError::Tech { mhz, source }),
            }
        }
        if ops.is_empty() {
            return Err(SweepError::NoReachablePoints);
        }
        Ok(ops)
    }

    fn finish<M: ClusterMeasurer>(
        &self,
        server: &ServerModel,
        measurer: &M,
        ops: Vec<(f64, OperatingPoint)>,
    ) -> Result<SweepResult, SweepError> {
        let mut points = Vec::with_capacity(ops.len());
        for (mhz, op) in ops {
            let cluster = {
                let _span =
                    ntc_telemetry::trace::span_with("sweep", || format!("ladder {mhz} MHz"));
                measurer.measure(mhz)
            }
            .map_err(|source| SweepError::Measure { mhz, source })?;
            points.push(self.evaluate(server, op, cluster));
        }
        Ok(SweepResult::new(points))
    }

    /// Assembles one sweep point from an operating point and a cluster
    /// measurement (exposed for custom drivers and ablations).
    pub fn evaluate(
        &self,
        server: &ServerModel,
        op: OperatingPoint,
        cluster: ClusterMeasurement,
    ) -> SweepPoint {
        let n_clusters = f64::from(server.clusters());
        let n_cores = f64::from(server.cores());

        // Chip-level traffic: every cluster contributes; aggregate DRAM
        // bandwidth saturates at the channels' peak.
        let peak = server.dram().config().peak_bandwidth();
        let total_traffic = (cluster.dram_read_bps + cluster.dram_write_bps) * n_clusters;
        let scale = if total_traffic > peak {
            peak / total_traffic
        } else {
            1.0
        };
        let traffic = DramTraffic::new(
            cluster.dram_read_bps * n_clusters * scale,
            cluster.dram_write_bps * n_clusters * scale,
        );
        // If DRAM saturates, chip throughput saturates with it.
        let uips = cluster.uips * n_clusters * scale;

        let power = PowerBreakdown {
            cores_dynamic: server.core_power().dynamic_power(op, self.activity) * n_cores,
            cores_static: server.core_power().static_power(op, self.activity) * n_cores,
            llc: server.llc().static_power() * n_clusters
                + server.llc().dynamic_power(cluster.llc_accesses_per_sec) * n_clusters * scale,
            xbar: server.xbar().static_power() * n_clusters
                + server.xbar().dynamic_power(cluster.xbar_flits_per_sec) * n_clusters * scale,
            io: server.io().power(),
            dram_background: server.dram().background_power(),
            dram_dynamic: server.dram().dynamic_power(traffic),
        };
        debug_assert!(power.is_physical(), "unphysical power at {op}");
        SweepPoint {
            mhz: op.frequency.0,
            op,
            uips,
            cluster,
            power,
        }
    }
}

/// Worker threads for a ladder of `jobs` points: one per available core
/// (at least two, so the parallel path is exercised even on constrained
/// machines), never more than there are points.
fn worker_count(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    jobs.min(cores.max(2))
}

/// Snapshot of the process-wide measurement-cache counters
/// `(hits, misses)`.
fn cache_counts() -> (u64, u64) {
    (
        crate::measure::CACHE_HITS.get(),
        crate::measure::CACHE_MISSES.get(),
    )
}

/// Logs this sweep's measurement-cache use (the counter deltas since
/// `before`) when metrics are enabled and the sweep actually consulted a
/// cache. Sweeps over cacheless measurers stay silent.
fn log_cache_use(before: (u64, u64)) {
    if !ntc_telemetry::metrics_enabled() {
        return;
    }
    let (hits, misses) = cache_counts();
    let (hits, misses) = (hits - before.0, misses - before.1);
    if hits + misses > 0 {
        eprintln!("telemetry: sweep measurement cache: {hits} hits, {misses} misses");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crate::measure::TableMeasurer;
    use ntc_power::Scope;
    use ntc_tech::Volts;

    fn server() -> ServerModel {
        ServerConfig::paper().build().unwrap()
    }

    fn run_synthetic() -> SweepResult {
        let m = TableMeasurer::synthetic(3.2, 1.6);
        FrequencySweep::paper_ladder().run(&server(), &m).unwrap()
    }

    #[test]
    fn full_ladder_is_reachable_in_fdsoi() {
        let r = run_synthetic();
        assert_eq!(r.points().len(), 20);
        assert!((r.points()[0].mhz - 100.0).abs() < 1e-9);
        assert!((r.points()[19].mhz - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn voltage_and_power_are_monotone_in_frequency() {
        let r = run_synthetic();
        for w in r.points().windows(2) {
            assert!(w[0].op.vdd <= w[1].op.vdd);
            assert!(w[0].power.cores() < w[1].power.cores());
        }
    }

    #[test]
    fn uncore_power_is_frequency_invariant() {
        let r = run_synthetic();
        let lo = r.points()[0].power;
        let hi = r.points()[19].power;
        assert!((lo.io.0 - hi.io.0).abs() < 1e-12);
        assert!((lo.dram_background.0 - hi.dram_background.0).abs() < 1e-12);
        // LLC/xbar change only through (small) dynamic traffic.
        assert!((lo.llc.0 - hi.llc.0).abs() < lo.llc.0 * 0.2);
    }

    #[test]
    fn chip_power_stays_on_the_100w_scale_at_the_top() {
        let r = run_synthetic();
        let top = r.points().last().unwrap();
        assert!(
            top.power.server().0 > 50.0 && top.power.server().0 < 200.0,
            "server power at 2 GHz: {}",
            top.power.server()
        );
        // At 100 MHz the floor is the frequency-invariant uncore + DRAM
        // background (~38 W) — the paper's energy-proportionality problem.
        let bottom = &r.points()[0];
        assert!(
            bottom.power.server().0 < 45.0,
            "server power at 100 MHz: {}",
            bottom.power.server()
        );
        assert!(
            bottom.power.uncore().0 + bottom.power.dram_background.0
                > bottom.power.server().0 * 0.8,
            "the NT floor must be uncore + memory background"
        );
    }

    #[test]
    fn paper_shape_cores_peak_low_soc_and_server_peak_higher() {
        let r = run_synthetic();
        let (core_best, _) = r.optimum(Scope::Cores).unwrap();
        let (soc_best, _) = r.optimum(Scope::Soc).unwrap();
        let (server_best, _) = r.optimum(Scope::Server).unwrap();
        assert!(
            core_best.mhz <= 300.0,
            "cores-only optimum at the bottom, got {}",
            core_best.mhz
        );
        assert!(
            (600.0..=1400.0).contains(&soc_best.mhz),
            "SoC optimum should be near 1 GHz, got {}",
            soc_best.mhz
        );
        assert!(
            server_best.mhz >= soc_best.mhz,
            "server optimum moves right of the SoC optimum: {} vs {}",
            server_best.mhz,
            soc_best.mhz
        );
        assert!(
            (800.0..=1600.0).contains(&server_best.mhz),
            "server optimum should be 1-1.2 GHz class, got {}",
            server_best.mhz
        );
    }

    #[test]
    fn fixed_fbb_sweep_uses_lower_voltages() {
        let server = server();
        let m = TableMeasurer::synthetic(3.2, 1.6);
        let plain = FrequencySweep::paper_ladder().run(&server, &m).unwrap();
        let fbb = FrequencySweep::paper_ladder()
            .with_bias(BodyBias::forward(Volts(1.0)).unwrap())
            .run(&server, &m)
            .unwrap();
        for (a, b) in plain.points().iter().zip(fbb.points()) {
            assert!(b.op.vdd < a.op.vdd, "fbb lowers vdd at {} MHz", a.mhz);
        }
    }

    #[test]
    fn bulk_ladder_drops_unreachable_points() {
        let mut cfg = ServerConfig::paper();
        cfg.technology = ntc_tech::TechnologyKind::Bulk28;
        let server = cfg.build().unwrap();
        let m = TableMeasurer::synthetic(3.2, 1.6);
        let r = FrequencySweep::paper_ladder().run(&server, &m).unwrap();
        assert!(r.points().len() < 20, "bulk cannot cover the full ladder");
        // Bulk's SRAM floor (0.7 V) also prunes the very bottom.
        assert!(r.points()[0].op.vdd >= Volts(0.69));
    }

    #[test]
    fn parallel_run_matches_serial_exactly() {
        let server = server();
        let m = TableMeasurer::synthetic(3.2, 1.6);
        let sweep = FrequencySweep::paper_ladder();
        let parallel = sweep.run(&server, &m).unwrap();
        let serial = sweep.run_serial(&server, &m).unwrap();
        assert_eq!(parallel.points().len(), serial.points().len());
        for (p, s) in parallel.points().iter().zip(serial.points()) {
            assert_eq!(p, s, "parallel and serial diverge at {} MHz", s.mhz);
        }
    }

    #[test]
    fn batched_run_matches_run_for_per_point_measurers() {
        // TableMeasurer keeps the default measure_ladder, so the batched
        // driver must reproduce the per-point sweep bit for bit.
        let server = server();
        let m = TableMeasurer::synthetic(3.2, 1.6);
        let sweep = FrequencySweep::paper_ladder();
        let batched = sweep.run_batched(&server, &m).unwrap();
        let plain = sweep.run(&server, &m).unwrap();
        assert_eq!(batched.points().len(), plain.points().len());
        for (b, p) in batched.points().iter().zip(plain.points()) {
            assert_eq!(b, p, "batched sweep diverged at {} MHz", p.mhz);
        }
    }

    #[test]
    fn batched_run_reports_chunk_failures_at_their_lowest_frequency() {
        struct FailsAbove(f64);
        impl ClusterMeasurer for FailsAbove {
            fn measure(&self, mhz: f64) -> Result<ClusterMeasurement, MeasureError> {
                if mhz > self.0 {
                    Err(MeasureError::Failed {
                        detail: format!("no data beyond {} MHz", self.0),
                    })
                } else {
                    TableMeasurer::synthetic(3.2, 1.6).measure(mhz)
                }
            }
        }
        let server = server();
        let err = FrequencySweep::paper_ladder()
            .run_batched(&server, &FailsAbove(0.0))
            .unwrap_err();
        match err {
            // Every chunk fails; the first chunk holds the ladder bottom.
            SweepError::Measure { mhz, .. } => assert!((mhz - 100.0).abs() < 1e-9),
            other => panic!("expected a Measure error, got {other:?}"),
        }
    }

    #[test]
    fn measurement_errors_report_the_lowest_failing_frequency() {
        struct FailsAbove(f64);
        impl ClusterMeasurer for FailsAbove {
            fn measure(&self, mhz: f64) -> Result<ClusterMeasurement, MeasureError> {
                if mhz > self.0 {
                    Err(MeasureError::Failed {
                        detail: format!("no data beyond {} MHz", self.0),
                    })
                } else {
                    TableMeasurer::synthetic(3.2, 1.6).measure(mhz)
                }
            }
        }
        let server = server();
        let err = FrequencySweep::paper_ladder()
            .run(&server, &FailsAbove(450.0))
            .unwrap_err();
        match err {
            SweepError::Measure { mhz, .. } => assert!((mhz - 500.0).abs() < 1e-9),
            other => panic!("expected a Measure error, got {other:?}"),
        }
    }

    #[test]
    fn dram_saturation_caps_uips() {
        // A measurer with absurd DRAM traffic must saturate at peak BW.
        let server = server();
        let base = TableMeasurer::synthetic(3.2, 1.6);
        let mut m = base.measure(2000.0).unwrap();
        m.dram_read_bps = 1e12;
        let sweep = FrequencySweep::paper_ladder();
        let op = OperatingPoint::at(
            server.core_power().timing(),
            MegaHertz(2000.0),
            BodyBias::ZERO,
        )
        .unwrap();
        let pt = sweep.evaluate(&server, op, m);
        let peak = server.dram().config().peak_bandwidth();
        let total = pt.power.dram_dynamic.0 / 0.2566e-9; // approx bytes/s
        assert!(total <= peak * 1.05, "traffic capped at channel peak");
        assert!(pt.uips < m.uips * f64::from(server.clusters()));
    }
}
