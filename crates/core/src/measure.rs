//! Cluster throughput measurement.
//!
//! The sweep engine needs, per frequency point, the cluster's UIPS and its
//! uncore/memory traffic rates. [`SimMeasurer`] obtains them by running the
//! `ntc-sim` cluster under a workload profile with checkpoint-warmed caches
//! and SMARTS-style warm-up/measure windows — the paper's methodology.
//! [`TableMeasurer`] replays pre-computed curves (interpolated in
//! log-frequency) for fast analytic studies and tests.
//!
//! Measurers are shared-state: [`ClusterMeasurer::measure`] takes `&self`,
//! so one measurer can serve many sweep worker threads at once. Expensive
//! simulation results are memoized by [`MeasurementCache`], which wraps any
//! measurer and keys results by [`MeasurementKey`] — a content fingerprint
//! of everything that determines the measurement (profile, frequency,
//! window, seed, prefetch degree). Caches can share one
//! [`MeasurementStore`] across measurers and persist it as JSON (the bench
//! layer keeps it under `results/cache/`), so repeated sweeps across
//! figures and across process runs skip the simulator entirely.

use ntc_sampling::SampleWindow;
use ntc_sim::{ChipConfig, ClusterConfig, ClusterSim, DramTimingConfig, SimConfig, SimStats};
use ntc_telemetry::LazyCounter;
use ntc_workloads::{prewarm_cluster, ProfileStream, WorkloadProfile};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What the sweep needs to know about one cluster at one frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterMeasurement {
    /// Core frequency of the measurement (MHz).
    pub mhz: f64,
    /// User instructions per second, one cluster.
    pub uips: f64,
    /// Aggregate UIPC across the cluster's cores.
    pub uipc: f64,
    /// LLC accesses per second (64-byte), one cluster.
    pub llc_accesses_per_sec: f64,
    /// Crossbar transfers per second, one cluster.
    pub xbar_flits_per_sec: f64,
    /// DRAM read bandwidth in bytes/second, one cluster.
    pub dram_read_bps: f64,
    /// DRAM write bandwidth in bytes/second, one cluster.
    pub dram_write_bps: f64,
}

impl ClusterMeasurement {
    /// Builds a measurement from simulator statistics.
    pub fn from_stats(stats: &SimStats) -> Self {
        ClusterMeasurement {
            mhz: stats.core_mhz,
            uips: stats.uips(),
            uipc: stats.uipc(),
            llc_accesses_per_sec: stats.llc_access_rate(),
            xbar_flits_per_sec: stats.xbar_rate(),
            dram_read_bps: stats.dram_read_bw(),
            dram_write_bps: stats.dram_write_bw(),
        }
    }
}

/// A measurement failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MeasureError {
    /// The requested frequency is non-positive or not finite.
    InvalidFrequency {
        /// The offending frequency (MHz).
        mhz: f64,
    },
    /// The measurement backend failed.
    Failed {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::InvalidFrequency { mhz } => {
                write!(
                    f,
                    "cannot measure at {mhz} MHz: frequency must be positive and finite"
                )
            }
            MeasureError::Failed { detail } => write!(f, "measurement failed: {detail}"),
        }
    }
}

impl Error for MeasureError {}

/// Source of per-frequency cluster measurements.
///
/// `measure` takes `&self` so implementations can be shared across sweep
/// worker threads; stateful backends must manage interior mutability
/// themselves (see [`MeasurementCache`]).
pub trait ClusterMeasurer {
    /// Measures the cluster at `mhz`.
    ///
    /// # Errors
    ///
    /// [`MeasureError::InvalidFrequency`] for non-positive or non-finite
    /// frequencies; [`MeasureError::Failed`] when the backend cannot
    /// produce a measurement.
    fn measure(&self, mhz: f64) -> Result<ClusterMeasurement, MeasureError>;

    /// The content key identifying `measure(mhz)`'s result, or `None` if
    /// this measurer's results are too cheap or too ambiguous to cache
    /// (the default). [`MeasurementCache`] consults this.
    fn key(&self, mhz: f64) -> Option<MeasurementKey> {
        let _ = mhz;
        None
    }

    /// Measures a batch of frequencies, returned in caller order.
    ///
    /// The default measures each point independently — full fidelity,
    /// identical to calling [`ClusterMeasurer::measure`] in a loop.
    /// Backends that can amortize state across points (see
    /// [`SimMeasurer::measure_ladder`]) override this with a shared-warm-up
    /// fast path whose results are statistically equivalent but *not*
    /// bit-identical to per-point measurement; such results must never be
    /// recorded under per-point [`MeasurementKey`]s.
    ///
    /// # Errors
    ///
    /// As for [`ClusterMeasurer::measure`]; the first failure aborts the
    /// batch.
    fn measure_ladder(&self, freqs: &[f64]) -> Result<Vec<ClusterMeasurement>, MeasureError> {
        freqs.iter().map(|&mhz| self.measure(mhz)).collect()
    }
}

impl<M: ClusterMeasurer + ?Sized> ClusterMeasurer for &M {
    fn measure(&self, mhz: f64) -> Result<ClusterMeasurement, MeasureError> {
        (**self).measure(mhz)
    }

    fn key(&self, mhz: f64) -> Option<MeasurementKey> {
        (**self).key(mhz)
    }

    fn measure_ladder(&self, freqs: &[f64]) -> Result<Vec<ClusterMeasurement>, MeasureError> {
        (**self).measure_ladder(freqs)
    }
}

fn check_frequency(mhz: f64) -> Result<(), MeasureError> {
    if mhz.is_finite() && mhz > 0.0 {
        Ok(())
    } else {
        Err(MeasureError::InvalidFrequency { mhz })
    }
}

/// Identifies one simulated measurement by content: everything that
/// determines the result, and nothing else. Two sweeps that agree on all
/// fields will receive identical measurements, so their results are safe
/// to share through a [`MeasurementStore`] — within a process and, via
/// JSON persistence, across processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MeasurementKey {
    /// FNV-1a fingerprint of the workload profile's canonical JSON.
    pub profile: u64,
    /// Frequency in milli-MHz (exact for any ladder step down to 1 kHz).
    pub mhz_millis: u64,
    /// Detailed warm-up cycles.
    pub warmup_cycles: u64,
    /// Measured cycles.
    pub measure_cycles: u64,
    /// Stream seed.
    pub seed: u64,
    /// Next-line prefetch degree of the measured configuration.
    pub prefetch_degree: u32,
    /// Canonical fingerprint of the simulated machine (per-cluster config
    /// vector plus DRAM timing) — see [`config_fingerprint`]. Two chips
    /// that differ in any one cluster's configuration get distinct keys;
    /// two orderings of the same clusters get the same one.
    pub config: u64,
}

impl MeasurementKey {
    /// Builds the key for a simulated measurement of `config`.
    pub fn new(
        profile: &WorkloadProfile,
        mhz: f64,
        window: SampleWindow,
        seed: u64,
        config: &SimConfig,
    ) -> Self {
        MeasurementKey {
            profile: profile_fingerprint(profile),
            mhz_millis: (mhz * 1000.0).round() as u64,
            warmup_cycles: window.warmup_cycles,
            measure_cycles: window.measure_cycles,
            seed,
            prefetch_degree: config.core.prefetch_degree,
            config: config_fingerprint(std::slice::from_ref(&config.cluster()), &config.dram),
        }
    }

    /// Builds the key for a whole-chip measurement: the frequency and
    /// prefetch fields live inside each cluster's config, so they are
    /// carried (canonically) by the `config` fingerprint.
    pub fn for_chip(profile: &WorkloadProfile, config: &ChipConfig, window: SampleWindow) -> Self {
        MeasurementKey {
            profile: profile_fingerprint(profile),
            mhz_millis: 0,
            warmup_cycles: window.warmup_cycles,
            measure_cycles: window.measure_cycles,
            seed: config.seed,
            prefetch_degree: 0,
            config: config_fingerprint(&config.clusters, &config.dram),
        }
    }
}

fn fnv1a(mut hash: u64, bytes: impl Iterator<Item = u8>) -> u64 {
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Stable content fingerprint of a workload profile: FNV-1a 64 over its
/// canonical (compact) JSON. Unlike `std::hash`, the result is identical
/// across processes and builds, which persistence relies on.
pub fn profile_fingerprint(profile: &WorkloadProfile) -> u64 {
    let json = serde_json::to_string(profile).expect("profiles serialize infallibly");
    fnv1a(FNV_OFFSET, json.bytes())
}

/// Canonical content fingerprint of a simulated machine: FNV-1a 64 over
/// the *sorted* per-cluster config JSONs plus the shared DRAM timing.
/// Sorting makes the fingerprint insensitive to cluster order — two
/// homogeneous chips listing the same clusters differently hash alike,
/// so they share cache entries — while any real per-cluster difference
/// (core class, frequency, cache geometry) lands in the JSON and yields
/// a distinct fingerprint. Seeds are deliberately excluded: the stream
/// seed is its own [`MeasurementKey`] field.
pub fn config_fingerprint(clusters: &[ClusterConfig], dram: &DramTimingConfig) -> u64 {
    let mut parts: Vec<String> = clusters
        .iter()
        .map(|c| serde_json::to_string(c).expect("cluster configs serialize infallibly"))
        .collect();
    parts.sort();
    let mut hash = FNV_OFFSET;
    for part in &parts {
        // JSON never contains a raw newline, so it is a safe separator.
        hash = fnv1a(hash, part.bytes().chain(std::iter::once(b'\n')));
    }
    let dram = serde_json::to_string(dram).expect("DRAM timing serializes infallibly");
    fnv1a(hash, dram.bytes())
}

/// [`config_fingerprint`] of a [`ChipConfig`] (the seed field is
/// excluded, as documented there).
pub fn chip_fingerprint(config: &ChipConfig) -> u64 {
    config_fingerprint(&config.clusters, &config.dram)
}

/// Process-wide cache counters, registered with the telemetry metrics
/// registry on first use. They aggregate over every [`MeasurementStore`]
/// in the process (per-store counts stay on the store itself); the sweep
/// engine snapshots them around each sweep to log per-sweep cache use.
pub(crate) static CACHE_HITS: LazyCounter = LazyCounter::new("measure.cache.hits");
pub(crate) static CACHE_MISSES: LazyCounter = LazyCounter::new("measure.cache.misses");

/// Shared, thread-safe memo of keyed measurements with hit/miss counters
/// and optional JSON persistence. One store is typically shared by every
/// figure in a process (wrapped in an [`Arc`]), so e.g. Figure 3 reuses
/// the CloudSuite ladders Figure 2 already simulated.
#[derive(Debug, Default)]
pub struct MeasurementStore {
    map: RwLock<HashMap<MeasurementKey, ClusterMeasurement>>,
    hits: AtomicU64,
    misses: AtomicU64,
    path: Option<PathBuf>,
}

impl MeasurementStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store that loads `path` now (if it exists and parses) and writes
    /// back there on [`MeasurementStore::save`]. A missing or corrupt file
    /// just means a cold start; it is never an error.
    pub fn with_persistence(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let map = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| {
                serde_json::from_str::<Vec<(MeasurementKey, ClusterMeasurement)>>(&text).ok()
            })
            .map(|entries| entries.into_iter().collect())
            .unwrap_or_default();
        MeasurementStore {
            map: RwLock::new(map),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            path: Some(path),
        }
    }

    /// Looks up a measurement, counting a hit or a miss (both on this
    /// store's own counters and, when metrics are enabled, on the
    /// process-wide registry counters the sweep engine logs at sweep
    /// end).
    pub fn lookup(&self, key: &MeasurementKey) -> Option<ClusterMeasurement> {
        let found = self.map.read().get(key).copied();
        match found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                CACHE_HITS.inc();
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                CACHE_MISSES.inc();
            }
        };
        found
    }

    /// Records a measurement.
    pub fn insert(&self, key: MeasurementKey, measurement: ClusterMeasurement) {
        self.map.write().insert(key, measurement);
    }

    /// Cache hits since construction (or [`MeasurementStore::reset_counters`]).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since construction (or [`MeasurementStore::reset_counters`]).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Zeroes the hit/miss counters (the memo itself is kept).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Number of memoized measurements.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// The persistence file, if configured.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Writes the memo to the persistence file (no-op without one).
    /// Entries are sorted by key so the file is byte-stable for a given
    /// content set.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable directory, full disk).
    pub fn save(&self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut entries: Vec<(MeasurementKey, ClusterMeasurement)> =
            self.map.read().iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_by_key(|(k, _)| *k);
        let json = serde_json::to_string_pretty(&entries).expect("measurements serialize");
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, json)
    }
}

/// A wrapper measurer that memoizes its inner measurer's results in a
/// [`MeasurementStore`]. Uncacheable measurers (those whose
/// [`ClusterMeasurer::key`] is `None`, like [`TableMeasurer`]) pass
/// through untouched, with no counter traffic.
#[derive(Debug)]
pub struct MeasurementCache<M> {
    inner: M,
    store: Arc<MeasurementStore>,
}

impl<M: ClusterMeasurer> MeasurementCache<M> {
    /// Wraps `inner` with a fresh private store.
    pub fn new(inner: M) -> Self {
        MeasurementCache {
            inner,
            store: Arc::new(MeasurementStore::new()),
        }
    }

    /// Wraps `inner` with a shared store (the cross-figure / cross-process
    /// configuration).
    pub fn shared(inner: M, store: Arc<MeasurementStore>) -> Self {
        MeasurementCache { inner, store }
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<MeasurementStore> {
        &self.store
    }

    /// Cache hits recorded by the backing store.
    pub fn hits(&self) -> u64 {
        self.store.hits()
    }

    /// Cache misses recorded by the backing store.
    pub fn misses(&self) -> u64 {
        self.store.misses()
    }

    /// The wrapped measurer.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: ClusterMeasurer> ClusterMeasurer for MeasurementCache<M> {
    fn measure(&self, mhz: f64) -> Result<ClusterMeasurement, MeasureError> {
        let Some(key) = self.inner.key(mhz) else {
            return self.inner.measure(mhz);
        };
        if let Some(cached) = self.store.lookup(&key) {
            return Ok(cached);
        }
        let measurement = self.inner.measure(mhz)?;
        self.store.insert(key, measurement);
        Ok(measurement)
    }

    fn key(&self, mhz: f64) -> Option<MeasurementKey> {
        self.inner.key(mhz)
    }
}

/// Execution-driven measurement via the `ntc-sim` cluster simulator.
#[derive(Debug, Clone)]
pub struct SimMeasurer {
    profile: WorkloadProfile,
    window: SampleWindow,
    seed: u64,
    prefetch_degree: u32,
    cluster: Option<ClusterConfig>,
}

impl SimMeasurer {
    /// A measurer using the paper's standard window (100 K warm-up / 50 K
    /// measured cycles; use [`SampleWindow::paper_data_serving`] via
    /// [`SimMeasurer::with_window`] for Data Serving).
    pub fn new(profile: WorkloadProfile) -> Self {
        SimMeasurer {
            profile,
            window: SampleWindow::paper_default(),
            seed: 0,
            prefetch_degree: 0,
            cluster: None,
        }
    }

    /// A fast variant for tests and examples: shorter windows (16 K / 16 K
    /// cycles) that still capture the UIPC-vs-frequency shape.
    pub fn fast(profile: WorkloadProfile) -> Self {
        SimMeasurer {
            profile,
            window: SampleWindow {
                warmup_cycles: 16_000,
                measure_cycles: 16_000,
            },
            seed: 0,
            prefetch_degree: 0,
            cluster: None,
        }
    }

    /// Overrides the warm-up/measure window (builder style).
    pub fn with_window(mut self, window: SampleWindow) -> Self {
        self.window = window;
        self
    }

    /// Overrides the stream seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables next-line prefetching at the given degree (builder style).
    /// Ignored when a full cluster config is supplied via
    /// [`SimMeasurer::with_cluster`] — that config's own degree wins.
    pub fn with_prefetch(mut self, degree: u32) -> Self {
        self.prefetch_degree = degree;
        self
    }

    /// Measures `cluster` instead of the paper cluster (builder style):
    /// the heterogeneous path, e.g. an in-order little cluster. The
    /// config's `core_mhz` is overridden by each measurement's frequency;
    /// everything else — core class, cache geometry, crossbar — is taken
    /// as given and fingerprinted into the cache key.
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// The driving profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The exact configuration a measurement at `mhz` simulates.
    fn effective_config(&self, mhz: f64) -> SimConfig {
        let mut config = SimConfig::paper_cluster(mhz);
        match self.cluster {
            Some(mut cluster) => {
                cluster.core_mhz = mhz;
                SimConfig::from_cluster(cluster, config.dram, config.seed)
            }
            None => {
                config.core.prefetch_degree = self.prefetch_degree;
                config
            }
        }
    }
}

impl ClusterMeasurer for SimMeasurer {
    fn measure(&self, mhz: f64) -> Result<ClusterMeasurement, MeasureError> {
        let _span = ntc_telemetry::trace::span_with("measure", || format!("measure {mhz} MHz"));
        check_frequency(mhz)?;
        let seed = self.seed;
        let profile = self.profile.clone();
        let config = self.effective_config(mhz);
        let mut sim = ClusterSim::new(config, |core| {
            ProfileStream::new(profile.clone(), seed.wrapping_mul(64) + u64::from(core))
        });
        prewarm_cluster(&mut sim, &self.profile);
        sim.warm_up(self.window.warmup_cycles);
        // The energy plane: attach the window probe *after* warm-up so
        // its boundary baseline lands on the measured region's entry.
        // Probes observe only — the armed path is bit-identical to the
        // plain one (the `energy-probe` diffcheck oracle enforces it).
        let energy = crate::observe::energy_armed().then(|| {
            let probe = ntc_sim::EnergyProbe::with_window(crate::observe::energy_window_cycles());
            let handle = probe.handle();
            sim.attach_probe(Box::new(probe));
            handle
        });
        let stats = sim.run_measured(self.window.measure_cycles);
        let measurement = ClusterMeasurement::from_stats(&stats);
        if let Some(handle) = energy {
            sim.detach_probe();
            crate::observe::record_run(crate::observe::RunActivity {
                mhz,
                total: measurement,
                cycles: stats.cycles,
                wall_ps: stats.wall_ps,
                windows: handle.finish(),
                coalesced: handle.coalesced(),
            });
        }
        Ok(measurement)
    }

    fn key(&self, mhz: f64) -> Option<MeasurementKey> {
        if !(mhz.is_finite() && mhz > 0.0) {
            return None;
        }
        Some(MeasurementKey::new(
            &self.profile,
            mhz,
            self.window,
            self.seed,
            &self.effective_config(mhz),
        ))
    }

    /// The batched ladder: one warm-up serves every point in the batch.
    ///
    /// The cluster is built and warmed once at the batch's *highest*
    /// frequency, then walked down the ladder: before each lower point
    /// the clock is rebased in place ([`ClusterSim::rebase_frequency`] —
    /// a modeled DVFS transition) and re-settled for one eighth of the
    /// warm-up window before its measurement window runs. Caches,
    /// predictors and queues carry over, which is what makes this
    /// `O(warmup + n·(settle + measure))` instead of
    /// `O(n·(warmup + measure))`.
    ///
    /// Results come back in **caller order** regardless of the internal
    /// descending walk. They are a distinct fidelity mode: statistically
    /// equivalent to per-point measurement (each window still satisfies
    /// the warm-then-measure discipline) but not bit-identical to it, so
    /// they are deliberately *never* stored under per-point
    /// [`MeasurementKey`]s — [`MeasurementCache`] keeps its default
    /// per-point path and does not route through this override.
    ///
    /// # Errors
    ///
    /// [`MeasureError::InvalidFrequency`] if any requested frequency is
    /// non-positive or non-finite (checked up front — no partial batch
    /// runs).
    fn measure_ladder(&self, freqs: &[f64]) -> Result<Vec<ClusterMeasurement>, MeasureError> {
        let _span = ntc_telemetry::trace::span_with("measure", || {
            format!("measure ladder x{}", freqs.len())
        });
        for &mhz in freqs {
            check_frequency(mhz)?;
        }
        if freqs.is_empty() {
            return Ok(Vec::new());
        }
        // Walk order: descending frequency (rebase only lengthens the
        // clock period). Ties keep caller order; duplicates re-measure.
        let mut order: Vec<usize> = (0..freqs.len()).collect();
        order.sort_by(|&a, &b| {
            freqs[b]
                .partial_cmp(&freqs[a])
                .expect("frequencies validated finite")
        });

        let seed = self.seed;
        let profile = self.profile.clone();
        let config = self.effective_config(freqs[order[0]]);
        let mut sim = ClusterSim::new(config, |core| {
            ProfileStream::new(profile.clone(), seed.wrapping_mul(64) + u64::from(core))
        });
        prewarm_cluster(&mut sim, &self.profile);
        sim.warm_up(self.window.warmup_cycles);
        let settle = (self.window.warmup_cycles / 8).max(1);

        let mut out = vec![None; freqs.len()];
        for (walked, &idx) in order.iter().enumerate() {
            let mhz = freqs[idx];
            if walked > 0 {
                sim.rebase_frequency(mhz);
                sim.warm_up(settle);
            }
            let energy = crate::observe::energy_armed().then(|| {
                let probe =
                    ntc_sim::EnergyProbe::with_window(crate::observe::energy_window_cycles());
                let handle = probe.handle();
                sim.attach_probe(Box::new(probe));
                handle
            });
            let stats = sim.run_measured(self.window.measure_cycles);
            let measurement = ClusterMeasurement::from_stats(&stats);
            if let Some(handle) = energy {
                sim.detach_probe();
                crate::observe::record_run(crate::observe::RunActivity {
                    mhz,
                    total: measurement,
                    cycles: stats.cycles,
                    wall_ps: stats.wall_ps,
                    windows: handle.finish(),
                    coalesced: handle.coalesced(),
                });
            }
            out[idx] = Some(measurement);
        }
        Ok(out
            .into_iter()
            .map(|m| m.expect("every index walked"))
            .collect())
    }
}

/// Interpolating measurer over pre-computed `(mhz, measurement)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableMeasurer {
    points: Vec<ClusterMeasurement>,
}

impl TableMeasurer {
    /// Builds from measurement points (sorted by frequency internally).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given.
    pub fn new(mut points: Vec<ClusterMeasurement>) -> Self {
        assert!(points.len() >= 2, "interpolation needs at least two points");
        points.sort_by(|a, b| a.mhz.partial_cmp(&b.mhz).expect("finite frequencies"));
        TableMeasurer { points }
    }

    /// A synthetic sub-linear throughput curve: UIPC falls from
    /// `uipc_low_f` at 100 MHz to `uipc_high_f` at 2 GHz with a smooth
    /// memory-stall shape — handy for analytic studies.
    ///
    /// # Panics
    ///
    /// Panics unless `uipc_low_f >= uipc_high_f > 0`.
    pub fn synthetic(uipc_low_f: f64, uipc_high_f: f64) -> Self {
        assert!(
            uipc_low_f >= uipc_high_f && uipc_high_f > 0.0,
            "UIPC must not increase with frequency"
        );
        // uipc(f) = a / (1 + b f); fit at 100 and 2000 MHz.
        let ratio = uipc_low_f / uipc_high_f;
        let b = (ratio - 1.0) / (2000.0 - ratio * 100.0);
        let a = uipc_low_f * (1.0 + b * 100.0);
        let points = (1..=20)
            .map(|i| {
                let mhz = 100.0 * f64::from(i);
                let uipc = a / (1.0 + b * mhz);
                let uips = uipc * mhz * 1e6;
                ClusterMeasurement {
                    mhz,
                    uips,
                    uipc,
                    llc_accesses_per_sec: uips * 0.03,
                    xbar_flits_per_sec: uips * 0.03,
                    dram_read_bps: uips * 0.008 * 64.0,
                    dram_write_bps: uips * 0.003 * 64.0,
                }
            })
            .collect();
        TableMeasurer { points }
    }

    fn blend(a: &ClusterMeasurement, b: &ClusterMeasurement, t: f64) -> ClusterMeasurement {
        let l = |x: f64, y: f64| x + (y - x) * t;
        ClusterMeasurement {
            mhz: l(a.mhz, b.mhz),
            uips: l(a.uips, b.uips),
            uipc: l(a.uipc, b.uipc),
            llc_accesses_per_sec: l(a.llc_accesses_per_sec, b.llc_accesses_per_sec),
            xbar_flits_per_sec: l(a.xbar_flits_per_sec, b.xbar_flits_per_sec),
            dram_read_bps: l(a.dram_read_bps, b.dram_read_bps),
            dram_write_bps: l(a.dram_write_bps, b.dram_write_bps),
        }
    }
}

impl ClusterMeasurer for TableMeasurer {
    fn measure(&self, mhz: f64) -> Result<ClusterMeasurement, MeasureError> {
        check_frequency(mhz)?;
        let pts = &self.points;
        if mhz <= pts[0].mhz {
            let mut m = pts[0];
            // Extrapolate throughput proportionally below the table.
            m.uips *= mhz / m.mhz;
            m.mhz = mhz;
            return Ok(m);
        }
        if mhz >= pts[pts.len() - 1].mhz {
            let mut m = pts[pts.len() - 1];
            m.uips *= mhz / m.mhz;
            m.mhz = mhz;
            return Ok(m);
        }
        let i = pts.partition_point(|p| p.mhz < mhz);
        let (a, b) = (&pts[i - 1], &pts[i]);
        // Geometric (log-frequency) interpolation: frequency ladders are
        // ratio-spaced, so equal ratios — not equal differences — should
        // land midway between table nodes.
        let t = (mhz.ln() - a.mhz.ln()) / (b.mhz.ln() - a.mhz.ln());
        Ok(Self::blend(a, b, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_workloads::CloudSuiteApp;

    #[test]
    fn sim_measurer_produces_consistent_rates() {
        let p = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
        let m = SimMeasurer::fast(p);
        let x = m.measure(1000.0).unwrap();
        assert!(x.uips > 0.0);
        assert!((x.uips / (x.uipc * 1000.0 * 1e6) - 1.0).abs() < 1e-9);
        assert!(x.llc_accesses_per_sec > 0.0);
    }

    #[test]
    fn sim_measurer_shows_the_uipc_frequency_effect() {
        let p = WorkloadProfile::cloudsuite(CloudSuiteApp::DataServing);
        let m = SimMeasurer::fast(p);
        let hi = m.measure(2000.0).unwrap();
        let lo = m.measure(200.0).unwrap();
        assert!(lo.uipc > hi.uipc, "UIPC rises as the clock slows");
        assert!(hi.uips > lo.uips, "UIPS still grows with frequency");
    }

    #[test]
    fn measurers_reject_unphysical_frequencies() {
        let t = TableMeasurer::synthetic(3.0, 1.5);
        for mhz in [0.0, -100.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                t.measure(mhz),
                Err(MeasureError::InvalidFrequency { .. })
            ));
        }
    }

    #[test]
    fn table_measurer_interpolates_and_extrapolates() {
        let t = TableMeasurer::synthetic(3.0, 1.5);
        let m500 = t.measure(500.0).unwrap();
        let m550 = t.measure(550.0).unwrap();
        let m600 = t.measure(600.0).unwrap();
        assert!(m500.uips < m550.uips && m550.uips < m600.uips);
        let m50 = t.measure(50.0).unwrap();
        assert!(m50.uips < m500.uips && m50.uips > 0.0);
    }

    #[test]
    fn interpolation_is_geometric_in_frequency() {
        // Nodes at 100 and 400 MHz; 200 MHz is their geometric midpoint
        // (t = ln2 / ln4 = 0.5), so every field lands halfway. Linear
        // interpolation in mhz would give t = 1/3 instead.
        let node = |mhz: f64, uipc: f64| ClusterMeasurement {
            mhz,
            uips: uipc * mhz * 1e6,
            uipc,
            llc_accesses_per_sec: uipc,
            xbar_flits_per_sec: uipc,
            dram_read_bps: uipc,
            dram_write_bps: uipc,
        };
        let t = TableMeasurer::new(vec![node(100.0, 1.0), node(400.0, 3.0)]);
        let mid = t.measure(200.0).unwrap();
        assert!((mid.uipc - 2.0).abs() < 1e-12, "got {}", mid.uipc);
        assert!((mid.dram_read_bps - 2.0).abs() < 1e-12);
        // Table nodes themselves are returned exactly (t = 0 and t = 1).
        assert!((t.measure(400.0).unwrap().uipc - 3.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_curve_hits_its_anchors() {
        let t = TableMeasurer::synthetic(3.0, 1.5);
        assert!((t.measure(100.0).unwrap().uipc - 3.0).abs() < 1e-6);
        assert!((t.measure(2000.0).unwrap().uipc - 1.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must not increase")]
    fn synthetic_rejects_rising_uipc() {
        let _ = TableMeasurer::synthetic(1.0, 2.0);
    }

    #[test]
    fn cache_hits_after_first_measurement() {
        let p = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
        let cached = MeasurementCache::new(SimMeasurer::fast(p));
        let a = cached.measure(500.0).unwrap();
        assert_eq!((cached.hits(), cached.misses()), (0, 1));
        let b = cached.measure(500.0).unwrap();
        assert_eq!((cached.hits(), cached.misses()), (1, 1));
        assert_eq!(a, b);
        // A different frequency is a different key.
        let _ = cached.measure(600.0).unwrap();
        assert_eq!((cached.hits(), cached.misses()), (1, 2));
    }

    #[test]
    fn cache_keys_distinguish_measurement_inputs() {
        let p = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
        let base = SimMeasurer::fast(p.clone());
        let k = |m: &SimMeasurer| m.key(1000.0).unwrap();
        assert_eq!(k(&base), k(&SimMeasurer::fast(p.clone())));
        assert_ne!(k(&base), k(&SimMeasurer::fast(p.clone()).with_seed(7)));
        assert_ne!(k(&base), k(&SimMeasurer::fast(p.clone()).with_prefetch(2)));
        assert_ne!(k(&base), k(&SimMeasurer::new(p.clone())));
        let other = WorkloadProfile::cloudsuite(CloudSuiteApp::DataServing);
        assert_ne!(k(&base), k(&SimMeasurer::fast(other)));
        assert_ne!(base.key(1000.0), base.key(1000.001));
    }

    #[test]
    fn table_measurers_bypass_the_cache() {
        let cached = MeasurementCache::new(TableMeasurer::synthetic(3.0, 1.5));
        assert!(cached.key(500.0).is_none());
        let _ = cached.measure(500.0).unwrap();
        let _ = cached.measure(500.0).unwrap();
        assert_eq!((cached.hits(), cached.misses()), (0, 0));
        assert!(cached.store().is_empty());
    }

    #[test]
    fn store_persists_and_reloads() {
        let dir = std::env::temp_dir().join(format!("ntc-cache-test-{}", std::process::id()));
        let path = dir.join("measurements.json");
        let _ = std::fs::remove_file(&path);

        let store = MeasurementStore::with_persistence(&path);
        let key = MeasurementKey::new(
            &WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch),
            700.0,
            SampleWindow::paper_default(),
            0,
            &SimConfig::paper_cluster(700.0),
        );
        let m = TableMeasurer::synthetic(3.0, 1.5).measure(700.0).unwrap();
        store.insert(key, m);
        store.save().unwrap();

        let reloaded = MeasurementStore::with_persistence(&path);
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.lookup(&key), Some(m));
        assert_eq!(reloaded.hits(), 1);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn corrupt_persistence_files_mean_a_cold_start() {
        let dir = std::env::temp_dir().join(format!("ntc-cache-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("measurements.json");
        std::fs::write(&path, "not json at all {{{").unwrap();
        let store = MeasurementStore::with_persistence(&path);
        assert!(store.is_empty());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn chip_keys_never_alias_across_cluster_configs() {
        // Chips differing in any one cluster's configuration must get
        // distinct keys — a heterogeneous sweep caching under a chip-wide
        // key would otherwise serve big-cluster numbers for little mixes.
        let profile = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
        let window = SampleWindow::paper_default();
        let base = ChipConfig::homogeneous(&SimConfig::paper_cluster(1000.0), 3);
        let k = |c: &ChipConfig| MeasurementKey::for_chip(&profile, c, window);

        let mut one_little = base.clone();
        one_little.clusters[2] = ClusterConfig::little_cluster(1000.0);
        assert_ne!(k(&base), k(&one_little));

        let mut one_slower = base.clone();
        one_slower.clusters[1].core_mhz = 900.0;
        assert_ne!(k(&base), k(&one_slower));

        let mut bigger_llc = base.clone();
        bigger_llc.clusters[0].llc.cache.size_bytes *= 2;
        assert_ne!(k(&base), k(&bigger_llc));
    }

    #[test]
    fn chip_keys_canonicalize_cluster_order() {
        // The same set of clusters in any order is the same machine: a
        // reordered-but-identical config must hit the cache.
        let profile = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
        let window = SampleWindow::paper_default();
        let mut mixed = ChipConfig::homogeneous(&SimConfig::paper_cluster(1000.0), 3);
        mixed.clusters[2] = ClusterConfig::little_cluster(600.0);
        let mut reordered = mixed.clone();
        reordered.clusters.swap(0, 2);
        assert_ne!(mixed.clusters, reordered.clusters);
        assert_eq!(
            MeasurementKey::for_chip(&profile, &mixed, window),
            MeasurementKey::for_chip(&profile, &reordered, window)
        );
        assert_eq!(chip_fingerprint(&mixed), chip_fingerprint(&reordered));
    }

    #[test]
    fn cluster_override_is_fingerprinted_into_the_key() {
        let p = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
        let base = SimMeasurer::fast(p.clone());
        let little =
            SimMeasurer::fast(p.clone()).with_cluster(ClusterConfig::little_cluster(1000.0));
        assert_ne!(base.key(1000.0), little.key(1000.0));
        // The override's core_mhz is replaced per measurement, so the
        // paper cluster handed back explicitly is the default machine —
        // same key, cache shared.
        let explicit = SimMeasurer::fast(p).with_cluster(SimConfig::paper_cluster(123.0).cluster());
        assert_eq!(base.key(1000.0), explicit.key(1000.0));
    }

    #[test]
    fn little_cluster_measures_slower_than_big_at_equal_frequency() {
        let p = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
        let big = SimMeasurer::fast(p.clone()).measure(1000.0).unwrap();
        let little = SimMeasurer::fast(p)
            .with_cluster(ClusterConfig::little_cluster(1000.0))
            .measure(1000.0)
            .unwrap();
        assert!(
            little.uips < big.uips,
            "an in-order narrow cluster must trail the A57 cluster: {} vs {}",
            little.uips,
            big.uips
        );
        assert!(little.uips > 0.0);
    }

    #[test]
    fn batched_ladder_matches_per_point_statistically() {
        let p = WorkloadProfile::cloudsuite(CloudSuiteApp::DataServing);
        let m = SimMeasurer::fast(p);
        // Caller order is deliberately scrambled; results must come back
        // in it, each point labeled with its own frequency.
        let freqs = [500.0, 2000.0, 1000.0];
        let batched = m.measure_ladder(&freqs).unwrap();
        assert_eq!(batched.len(), 3);
        for (b, &mhz) in batched.iter().zip(&freqs) {
            assert_eq!(b.mhz, mhz);
            assert!(b.uips > 0.0);
        }
        // Physics survives batching: UIPS grows and UIPC falls with
        // frequency, exactly as in per-point measurement.
        let (m500, m2000, m1000) = (&batched[0], &batched[1], &batched[2]);
        assert!(m2000.uips > m1000.uips && m1000.uips > m500.uips);
        assert!(m500.uipc > m2000.uipc);
        // And each point lands near its cold per-point counterpart —
        // batching is a fidelity mode, not a different machine.
        for (b, &mhz) in batched.iter().zip(&freqs) {
            let cold = m.measure(mhz).unwrap();
            assert!(
                (b.uips / cold.uips - 1.0).abs() < 0.35,
                "batched {mhz} MHz UIPS strays from per-point: {} vs {}",
                b.uips,
                cold.uips
            );
        }
    }

    #[test]
    fn batched_ladder_validates_before_running_and_handles_edges() {
        let p = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
        let m = SimMeasurer::fast(p);
        assert!(matches!(
            m.measure_ladder(&[1000.0, f64::NAN]),
            Err(MeasureError::InvalidFrequency { .. })
        ));
        assert!(m.measure_ladder(&[]).unwrap().is_empty());
        // A single-point batch is just a measurement.
        let one = m.measure_ladder(&[800.0]).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].mhz, 800.0);
        // Duplicate frequencies each get their own (re-settled) window.
        let dup = m.measure_ladder(&[600.0, 600.0]).unwrap();
        assert_eq!(dup.len(), 2);
        assert!(dup.iter().all(|x| x.uips > 0.0));
    }

    #[test]
    fn default_measure_ladder_is_the_per_point_loop() {
        // TableMeasurer does not override the batch path, so a ladder is
        // exactly a mapped measure() — bit-identical, any order.
        let t = TableMeasurer::synthetic(3.0, 1.5);
        let freqs = [700.0, 300.0, 1500.0];
        let batch = t.measure_ladder(&freqs).unwrap();
        for (b, &mhz) in batch.iter().zip(&freqs) {
            assert_eq!(*b, t.measure(mhz).unwrap());
        }
    }

    #[test]
    fn profile_fingerprint_is_content_keyed() {
        let a = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
        let b = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
        assert_eq!(profile_fingerprint(&a), profile_fingerprint(&b));
        let mut c = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
        c.hot_fraction *= 0.99;
        assert_ne!(profile_fingerprint(&a), profile_fingerprint(&c));
    }
}
