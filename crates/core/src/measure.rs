//! Cluster throughput measurement.
//!
//! The sweep engine needs, per frequency point, the cluster's UIPS and its
//! uncore/memory traffic rates. [`SimMeasurer`] obtains them by running the
//! `ntc-sim` cluster under a workload profile with checkpoint-warmed caches
//! and SMARTS-style warm-up/measure windows — the paper's methodology.
//! [`TableMeasurer`] replays pre-computed curves (log-interpolated) for
//! fast analytic studies and tests.

use ntc_sampling::SampleWindow;
use ntc_sim::{ClusterSim, SimConfig, SimStats};
use ntc_workloads::{prewarm_cluster, ProfileStream, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// What the sweep needs to know about one cluster at one frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterMeasurement {
    /// Core frequency of the measurement (MHz).
    pub mhz: f64,
    /// User instructions per second, one cluster.
    pub uips: f64,
    /// Aggregate UIPC across the cluster's cores.
    pub uipc: f64,
    /// LLC accesses per second (64-byte), one cluster.
    pub llc_accesses_per_sec: f64,
    /// Crossbar transfers per second, one cluster.
    pub xbar_flits_per_sec: f64,
    /// DRAM read bandwidth in bytes/second, one cluster.
    pub dram_read_bps: f64,
    /// DRAM write bandwidth in bytes/second, one cluster.
    pub dram_write_bps: f64,
}

impl ClusterMeasurement {
    /// Builds a measurement from simulator statistics.
    pub fn from_stats(stats: &SimStats) -> Self {
        ClusterMeasurement {
            mhz: stats.core_mhz,
            uips: stats.uips(),
            uipc: stats.uipc(),
            llc_accesses_per_sec: stats.llc_access_rate(),
            xbar_flits_per_sec: stats.xbar_rate(),
            dram_read_bps: stats.dram_read_bw(),
            dram_write_bps: stats.dram_write_bw(),
        }
    }
}

/// Source of per-frequency cluster measurements.
pub trait ClusterMeasurer {
    /// Measures the cluster at `mhz`.
    fn measure(&mut self, mhz: f64) -> ClusterMeasurement;
}

/// Execution-driven measurement via the `ntc-sim` cluster simulator.
#[derive(Debug, Clone)]
pub struct SimMeasurer {
    profile: WorkloadProfile,
    window: SampleWindow,
    seed: u64,
    prefetch_degree: u32,
}

impl SimMeasurer {
    /// A measurer using the paper's standard window (100 K warm-up / 50 K
    /// measured cycles; use [`SampleWindow::paper_data_serving`] via
    /// [`SimMeasurer::with_window`] for Data Serving).
    pub fn new(profile: WorkloadProfile) -> Self {
        SimMeasurer {
            profile,
            window: SampleWindow::paper_default(),
            seed: 0,
            prefetch_degree: 0,
        }
    }

    /// A fast variant for tests and examples: shorter windows (16 K / 16 K
    /// cycles) that still capture the UIPC-vs-frequency shape.
    pub fn fast(profile: WorkloadProfile) -> Self {
        SimMeasurer {
            profile,
            window: SampleWindow {
                warmup_cycles: 16_000,
                measure_cycles: 16_000,
            },
            seed: 0,
            prefetch_degree: 0,
        }
    }

    /// Overrides the warm-up/measure window (builder style).
    pub fn with_window(mut self, window: SampleWindow) -> Self {
        self.window = window;
        self
    }

    /// Overrides the stream seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables next-line prefetching at the given degree (builder style).
    pub fn with_prefetch(mut self, degree: u32) -> Self {
        self.prefetch_degree = degree;
        self
    }

    /// The driving profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }
}

impl ClusterMeasurer for SimMeasurer {
    fn measure(&mut self, mhz: f64) -> ClusterMeasurement {
        let seed = self.seed;
        let profile = self.profile.clone();
        let mut config = SimConfig::paper_cluster(mhz);
        config.core.prefetch_degree = self.prefetch_degree;
        let mut sim = ClusterSim::new(config, |core| {
            ProfileStream::new(profile.clone(), seed.wrapping_mul(64) + u64::from(core))
        });
        prewarm_cluster(&mut sim, &self.profile);
        sim.warm_up(self.window.warmup_cycles);
        let stats = sim.run_measured(self.window.measure_cycles);
        ClusterMeasurement::from_stats(&stats)
    }
}

/// Interpolating measurer over pre-computed `(mhz, measurement)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableMeasurer {
    points: Vec<ClusterMeasurement>,
}

impl TableMeasurer {
    /// Builds from measurement points (sorted by frequency internally).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given.
    pub fn new(mut points: Vec<ClusterMeasurement>) -> Self {
        assert!(points.len() >= 2, "interpolation needs at least two points");
        points.sort_by(|a, b| a.mhz.partial_cmp(&b.mhz).expect("finite frequencies"));
        TableMeasurer { points }
    }

    /// A synthetic sub-linear throughput curve: UIPC falls from
    /// `uipc_low_f` at 100 MHz to `uipc_high_f` at 2 GHz with a smooth
    /// memory-stall shape — handy for analytic studies.
    ///
    /// # Panics
    ///
    /// Panics unless `uipc_low_f >= uipc_high_f > 0`.
    pub fn synthetic(uipc_low_f: f64, uipc_high_f: f64) -> Self {
        assert!(
            uipc_low_f >= uipc_high_f && uipc_high_f > 0.0,
            "UIPC must not increase with frequency"
        );
        // uipc(f) = a / (1 + b f); fit at 100 and 2000 MHz.
        let ratio = uipc_low_f / uipc_high_f;
        let b = (ratio - 1.0) / (2000.0 - ratio * 100.0);
        let a = uipc_low_f * (1.0 + b * 100.0);
        let points = (1..=20)
            .map(|i| {
                let mhz = 100.0 * f64::from(i);
                let uipc = a / (1.0 + b * mhz);
                let uips = uipc * mhz * 1e6;
                ClusterMeasurement {
                    mhz,
                    uips,
                    uipc,
                    llc_accesses_per_sec: uips * 0.03,
                    xbar_flits_per_sec: uips * 0.03,
                    dram_read_bps: uips * 0.008 * 64.0,
                    dram_write_bps: uips * 0.003 * 64.0,
                }
            })
            .collect();
        TableMeasurer { points }
    }

    fn lerp(a: &ClusterMeasurement, b: &ClusterMeasurement, t: f64) -> ClusterMeasurement {
        let l = |x: f64, y: f64| x + (y - x) * t;
        ClusterMeasurement {
            mhz: l(a.mhz, b.mhz),
            uips: l(a.uips, b.uips),
            uipc: l(a.uipc, b.uipc),
            llc_accesses_per_sec: l(a.llc_accesses_per_sec, b.llc_accesses_per_sec),
            xbar_flits_per_sec: l(a.xbar_flits_per_sec, b.xbar_flits_per_sec),
            dram_read_bps: l(a.dram_read_bps, b.dram_read_bps),
            dram_write_bps: l(a.dram_write_bps, b.dram_write_bps),
        }
    }
}

impl ClusterMeasurer for TableMeasurer {
    fn measure(&mut self, mhz: f64) -> ClusterMeasurement {
        let pts = &self.points;
        if mhz <= pts[0].mhz {
            let mut m = pts[0];
            // Extrapolate throughput proportionally below the table.
            m.uips *= mhz / m.mhz;
            m.mhz = mhz;
            return m;
        }
        if mhz >= pts[pts.len() - 1].mhz {
            let mut m = pts[pts.len() - 1];
            m.uips *= mhz / m.mhz;
            m.mhz = mhz;
            return m;
        }
        let i = pts.partition_point(|p| p.mhz < mhz);
        let (a, b) = (&pts[i - 1], &pts[i]);
        let t = (mhz - a.mhz) / (b.mhz - a.mhz);
        Self::lerp(a, b, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_workloads::CloudSuiteApp;

    #[test]
    fn sim_measurer_produces_consistent_rates() {
        let p = WorkloadProfile::cloudsuite(CloudSuiteApp::WebSearch);
        let mut m = SimMeasurer::fast(p);
        let x = m.measure(1000.0);
        assert!(x.uips > 0.0);
        assert!((x.uips / (x.uipc * 1000.0 * 1e6) - 1.0).abs() < 1e-9);
        assert!(x.llc_accesses_per_sec > 0.0);
    }

    #[test]
    fn sim_measurer_shows_the_uipc_frequency_effect() {
        let p = WorkloadProfile::cloudsuite(CloudSuiteApp::DataServing);
        let mut m = SimMeasurer::fast(p);
        let hi = m.measure(2000.0);
        let lo = m.measure(200.0);
        assert!(lo.uipc > hi.uipc, "UIPC rises as the clock slows");
        assert!(hi.uips > lo.uips, "UIPS still grows with frequency");
    }

    #[test]
    fn table_measurer_interpolates_and_extrapolates() {
        let mut t = TableMeasurer::synthetic(3.0, 1.5);
        let m500 = t.measure(500.0);
        let m550 = t.measure(550.0);
        let m600 = t.measure(600.0);
        assert!(m500.uips < m550.uips && m550.uips < m600.uips);
        let m50 = t.measure(50.0);
        assert!(m50.uips < m500.uips && m50.uips > 0.0);
    }

    #[test]
    fn synthetic_curve_hits_its_anchors() {
        let mut t = TableMeasurer::synthetic(3.0, 1.5);
        assert!((t.measure(100.0).uipc - 3.0).abs() < 1e-6);
        assert!((t.measure(2000.0).uipc - 1.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must not increase")]
    fn synthetic_rejects_rising_uipc() {
        let _ = TableMeasurer::synthetic(1.0, 2.0);
    }
}
