//! Heterogeneous chip sweeps: big/little cluster mixes under iso-power
//! and iso-QoS constraints.
//!
//! The paper's sweep is homogeneous — every cluster runs the same
//! Cortex-A57 cores at the same frequency. The per-cluster configuration
//! plane lifts that restriction: each cluster is its own clock domain and
//! may use a different core class. This module plans and evaluates such
//! chips *compositionally*: each distinct `(class, frequency)` cluster
//! configuration is measured once (the measurement cache makes repeats
//! free), then chip throughput and power are assembled from per-class
//! power models at per-cluster operating points, sharing one DRAM
//! bandwidth budget — the same composition [`FrequencySweep::evaluate`]
//! uses for the homogeneous chip, generalised to a mixed cluster vector.
//!
//! The output of [`HeteroSweep::run`] is a cloud of [`HeteroPoint`]s;
//! [`pareto_frontier`], [`iso_power`] and [`iso_qos`] carve out the
//! frontier the paper's discussion section asks about: does a big/little
//! mix dominate every homogeneous point on throughput-per-watt at equal
//! power?

use crate::config::ServerModel;
use crate::measure::{ClusterMeasurement, MeasureError};
use crate::sweep::{FrequencySweep, SweepError};
use ntc_power::{CoreActivity, CorePowerModel, DramTraffic, PowerBreakdown};
use ntc_tech::{BodyBias, CoreClass, OperatingPoint, TechError, Technology, Watts};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Effective switched capacitance of a little (Cortex-A53-class) core
/// relative to the big (Cortex-A57-class) core.
///
/// The A53 core occupies roughly a third of the A57's area in the same
/// 28 nm node, and switched capacitance tracks device width, so the
/// little core's `Ceff` is modelled at 35 % of
/// [`ntc_power::core::A57_CEFF_FARADS`].
pub const LITTLE_CEFF_RATIO: f64 = 0.35;

/// One cluster of a planned heterogeneous chip: which core class it
/// uses, the frequency its clock domain runs at, and the body bias its
/// V/f point is resolved under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterPlan {
    /// Core microarchitecture class.
    pub class: CoreClass,
    /// Cluster clock frequency in MHz.
    pub mhz: f64,
    /// Body bias for this cluster's operating point.
    pub bias: BodyBias,
}

/// A whole planned chip: one [`ClusterPlan`] per cluster instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipPlan {
    /// Per-cluster plans.
    pub clusters: Vec<ClusterPlan>,
}

impl ChipPlan {
    /// A big.LITTLE mix: `n_big` big clusters at `big_mhz` followed by
    /// `n_little` little clusters at `little_mhz`, all unbiased.
    pub fn big_little(n_big: u32, big_mhz: f64, n_little: u32, little_mhz: f64) -> Self {
        let big = ClusterPlan {
            class: CoreClass::Big,
            mhz: big_mhz,
            bias: BodyBias::ZERO,
        };
        let little = ClusterPlan {
            class: CoreClass::Little,
            mhz: little_mhz,
            bias: BodyBias::ZERO,
        };
        ChipPlan {
            clusters: (0..n_big)
                .map(|_| big)
                .chain((0..n_little).map(|_| little))
                .collect(),
        }
    }

    /// `(big, little)` cluster counts.
    pub fn counts(&self) -> (u32, u32) {
        let big = self
            .clusters
            .iter()
            .filter(|c| c.class == CoreClass::Big)
            .count() as u32;
        (big, self.clusters.len() as u32 - big)
    }

    /// A compact human-readable label, e.g. `"3B@1600+6L@600"`.
    pub fn label(&self) -> String {
        let (n_big, n_little) = self.counts();
        let freq_of = |class: CoreClass| {
            self.clusters
                .iter()
                .find(|c| c.class == class)
                .map_or(0.0, |c| c.mhz)
        };
        match (n_big, n_little) {
            (_, 0) => format!("{n_big}B@{:.0}", freq_of(CoreClass::Big)),
            (0, _) => format!("{n_little}L@{:.0}", freq_of(CoreClass::Little)),
            _ => format!(
                "{n_big}B@{:.0}+{n_little}L@{:.0}",
                freq_of(CoreClass::Big),
                freq_of(CoreClass::Little)
            ),
        }
    }
}

/// One evaluated heterogeneous chip configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroPoint {
    /// The plan this point evaluates.
    pub plan: ChipPlan,
    /// Resolved operating point of each cluster (aligned with
    /// `plan.clusters`).
    pub ops: Vec<OperatingPoint>,
    /// Chip-level user instructions per second (DRAM saturation applied).
    pub uips: f64,
    /// The slowest cluster's per-core UIPS — the QoS-critical rate a
    /// request pinned to the weakest core sees.
    pub min_core_uips: f64,
    /// Per-component power.
    pub power: PowerBreakdown,
}

impl HeteroPoint {
    /// Total server power.
    pub fn watts(&self) -> Watts {
        self.power.server()
    }

    /// Server-scope efficiency, UIPS per watt.
    pub fn uips_per_watt(&self) -> f64 {
        self.uips / self.watts().0
    }
}

/// The heterogeneous sweep driver: per-class frequency ladders, the
/// big/little mix ratios to enumerate, and the evaluation policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroSweep {
    big_ladder: Vec<f64>,
    little_ladder: Vec<f64>,
    mixes: Vec<(u32, u32)>,
    bias: BodyBias,
    activity: CoreActivity,
}

impl HeteroSweep {
    /// A sweep over explicit per-class ladders (MHz) and `(big, little)`
    /// cluster-count mixes.
    ///
    /// # Panics
    ///
    /// Panics if either ladder contains non-positive frequencies, if both
    /// ladders are empty, if `mixes` is empty, or if any mix is `(0, 0)`.
    pub fn new(big_ladder: Vec<f64>, little_ladder: Vec<f64>, mixes: Vec<(u32, u32)>) -> Self {
        let ok = |l: &[f64]| l.iter().all(|f| f.is_finite() && *f > 0.0);
        assert!(
            ok(&big_ladder) && ok(&little_ladder),
            "frequencies must be positive"
        );
        assert!(
            !big_ladder.is_empty() || !little_ladder.is_empty(),
            "both ladders are empty"
        );
        assert!(!mixes.is_empty(), "no mixes to sweep");
        assert!(
            mixes.iter().all(|&(b, l)| b + l > 0),
            "a mix must have at least one cluster"
        );
        HeteroSweep {
            big_ladder,
            little_ladder,
            mixes,
            bias: BodyBias::ZERO,
            activity: CoreActivity::BUSY,
        }
    }

    /// The paper-chip sweep: every big/little split of `clusters`
    /// clusters, both classes on the paper's 100 MHz – 2 GHz ladder.
    pub fn paper(clusters: u32) -> Self {
        let ladder: Vec<f64> = (1..=20).map(|i| f64::from(i) * 100.0).collect();
        Self::new(
            ladder.clone(),
            ladder,
            (0..=clusters).map(|b| (b, clusters - b)).collect(),
        )
    }

    /// Applies a fixed body bias to every cluster (builder style).
    pub fn with_bias(mut self, bias: BodyBias) -> Self {
        self.bias = bias;
        self
    }

    /// Overrides the core activity (builder style).
    pub fn with_activity(mut self, activity: CoreActivity) -> Self {
        self.activity = activity;
        self
    }

    /// The big-cluster ladder.
    pub fn big_ladder(&self) -> &[f64] {
        &self.big_ladder
    }

    /// The little-cluster ladder.
    pub fn little_ladder(&self) -> &[f64] {
        &self.little_ladder
    }

    /// The `(big, little)` mixes.
    pub fn mixes(&self) -> &[(u32, u32)] {
        &self.mixes
    }

    /// Runs the sweep: for every mix and every per-class ladder pairing,
    /// resolve each cluster's V/f point, measure each distinct
    /// `(class, frequency)` cluster once via `measure`, and compose the
    /// chip. Plans with any unreachable cluster frequency are skipped,
    /// mirroring the silicon (and [`FrequencySweep::run`]).
    ///
    /// `measure` is typically a [`crate::SimMeasurer`] per class behind a
    /// shared [`crate::MeasurementCache`]; results are additionally
    /// memoized here so each `(class, frequency)` simulates at most once
    /// per sweep even with a cacheless measurer.
    ///
    /// # Errors
    ///
    /// [`SweepError::NoReachablePoints`] if every plan was skipped,
    /// [`SweepError::Tech`] for unexpected model failures, or
    /// [`SweepError::Measure`] if `measure` failed.
    pub fn run<F>(
        &self,
        server: &ServerModel,
        mut measure: F,
    ) -> Result<Vec<HeteroPoint>, SweepError>
    where
        F: FnMut(CoreClass, f64) -> Result<ClusterMeasurement, MeasureError>,
    {
        let _span = ntc_telemetry::trace::span_cat("sweep", "hetero.run");
        let tech = server.core_power().timing().technology().clone();
        let big_power = server.core_power().clone();
        let little_power =
            little_core_power(server).map_err(|source| SweepError::Tech { mhz: 0.0, source })?;

        let mut memo: HashMap<(CoreClass, u64), ClusterMeasurement> = HashMap::new();
        let mut points = Vec::new();
        for &(n_big, n_little) in &self.mixes {
            // A class with zero clusters contributes nothing; collapse its
            // ladder to a single placeholder so the pairing loop stays
            // rectangular without duplicating plans.
            let big_freqs = ladder_for(n_big, &self.big_ladder);
            let little_freqs = ladder_for(n_little, &self.little_ladder);
            for &big_mhz in big_freqs {
                for &little_mhz in little_freqs {
                    let plan = ChipPlan::big_little(n_big, big_mhz, n_little, little_mhz)
                        .with_bias(self.bias);
                    let Some(ops) = resolve_ops(&plan, &tech)? else {
                        continue;
                    };
                    let point = self.evaluate(
                        server,
                        plan,
                        ops,
                        (&big_power, &little_power),
                        &mut memo,
                        &mut measure,
                    )?;
                    points.push(point);
                }
            }
        }
        if points.is_empty() {
            return Err(SweepError::NoReachablePoints);
        }
        Ok(points)
    }

    /// Assembles one heterogeneous point from resolved per-cluster
    /// operating points and per-cluster measurements — the mixed-vector
    /// generalisation of [`FrequencySweep::evaluate`].
    fn evaluate<F>(
        &self,
        server: &ServerModel,
        plan: ChipPlan,
        ops: Vec<OperatingPoint>,
        (big_power, little_power): (&CorePowerModel, &CorePowerModel),
        memo: &mut HashMap<(CoreClass, u64), ClusterMeasurement>,
        measure: &mut F,
    ) -> Result<HeteroPoint, SweepError>
    where
        F: FnMut(CoreClass, f64) -> Result<ClusterMeasurement, MeasureError>,
    {
        let cores_per_cluster = f64::from(server.config().cores_per_cluster);
        let mut measurements = Vec::with_capacity(plan.clusters.len());
        for cluster in &plan.clusters {
            let key = (cluster.class, cluster.mhz.to_bits());
            let m = match memo.get(&key) {
                Some(m) => *m,
                None => {
                    let m = measure(cluster.class, cluster.mhz).map_err(|source| {
                        SweepError::Measure {
                            mhz: cluster.mhz,
                            source,
                        }
                    })?;
                    memo.insert(key, m);
                    m
                }
            };
            measurements.push(m);
        }

        // Chip-level traffic: every cluster contributes; aggregate DRAM
        // bandwidth saturates at the channels' peak, and throughput
        // saturates with it.
        let peak = server.dram().config().peak_bandwidth();
        let total_traffic: f64 = measurements
            .iter()
            .map(|m| m.dram_read_bps + m.dram_write_bps)
            .sum();
        let scale = if total_traffic > peak {
            peak / total_traffic
        } else {
            1.0
        };
        let traffic = DramTraffic::new(
            measurements.iter().map(|m| m.dram_read_bps).sum::<f64>() * scale,
            measurements.iter().map(|m| m.dram_write_bps).sum::<f64>() * scale,
        );
        let uips: f64 = measurements.iter().map(|m| m.uips).sum::<f64>() * scale;
        let min_core_uips = measurements
            .iter()
            .map(|m| m.uips * scale / cores_per_cluster)
            .fold(f64::INFINITY, f64::min);

        let mut cores_dynamic = Watts(0.0);
        let mut cores_static = Watts(0.0);
        let mut llc = Watts(0.0);
        let mut xbar = Watts(0.0);
        for (cluster, (op, m)) in plan.clusters.iter().zip(ops.iter().zip(&measurements)) {
            let core = match cluster.class {
                CoreClass::Big => big_power,
                CoreClass::Little => little_power,
            };
            cores_dynamic += core.dynamic_power(*op, self.activity) * cores_per_cluster;
            cores_static += core.static_power(*op, self.activity) * cores_per_cluster;
            llc += server.llc().static_power()
                + server.llc().dynamic_power(m.llc_accesses_per_sec) * scale;
            xbar += server.xbar().static_power()
                + server.xbar().dynamic_power(m.xbar_flits_per_sec) * scale;
        }
        let power = PowerBreakdown {
            cores_dynamic,
            cores_static,
            llc,
            xbar,
            io: server.io().power(),
            dram_background: server.dram().background_power(),
            dram_dynamic: server.dram().dynamic_power(traffic),
        };
        debug_assert!(power.is_physical(), "unphysical power for {}", plan.label());
        Ok(HeteroPoint {
            plan,
            ops,
            uips,
            min_core_uips,
            power,
        })
    }
}

impl ChipPlan {
    /// Applies `bias` to every cluster (builder style).
    pub fn with_bias(mut self, bias: BodyBias) -> Self {
        for cluster in &mut self.clusters {
            cluster.bias = bias;
        }
        self
    }
}

impl FrequencySweep {
    /// Lifts this homogeneous ladder into a per-cluster heterogeneous
    /// sweep: both classes inherit the ladder (the little ladder may be
    /// overridden afterwards via [`HeteroSweep::new`] if asymmetric
    /// ladders are wanted), along with this sweep's bias and activity.
    pub fn per_cluster(&self, mixes: Vec<(u32, u32)>) -> HeteroSweep {
        HeteroSweep::new(
            self.frequencies().to_vec(),
            self.frequencies().to_vec(),
            mixes,
        )
        .with_bias(self.bias())
        .with_activity(self.activity())
    }
}

/// The little-core power model derived from the server's configuration:
/// Cortex-A53-class timing in the same technology at the same die
/// temperature, with [`LITTLE_CEFF_RATIO`] of the big core's switched
/// capacitance.
///
/// # Errors
///
/// As for [`CorePowerModel::cortex_a57`].
pub fn little_core_power(server: &ServerModel) -> Result<CorePowerModel, TechError> {
    let tech = Technology::preset(server.config().technology);
    let timing = CoreClass::Little.timing(tech);
    Ok(CorePowerModel::cortex_a57(timing)?
        .with_ceff(server.core_power().ceff() * LITTLE_CEFF_RATIO)
        .with_temperature(server.config().temperature))
}

/// The ladder a class with `n` clusters actually sweeps: its full ladder
/// when present, a single placeholder frequency when absent (the plan
/// contains no such cluster, so the value never reaches evaluation).
fn ladder_for(n: u32, ladder: &[f64]) -> &[f64] {
    const UNUSED: &[f64] = &[100.0];
    if n == 0 || ladder.is_empty() {
        UNUSED
    } else {
        ladder
    }
}

/// Resolves every cluster's operating point, or `None` if any cluster's
/// frequency is unreachable for its class (the plan is skipped, like an
/// unreachable ladder point in [`FrequencySweep::run`]).
fn resolve_ops(
    plan: &ChipPlan,
    tech: &Technology,
) -> Result<Option<Vec<OperatingPoint>>, SweepError> {
    let mut ops = Vec::with_capacity(plan.clusters.len());
    for cluster in &plan.clusters {
        match cluster.class.operating_point(
            tech.clone(),
            ntc_tech::MegaHertz(cluster.mhz),
            cluster.bias,
        ) {
            Ok(op) => ops.push(op),
            Err(TechError::FrequencyUnreachable { .. })
            | Err(TechError::FrequencyTooLow { .. }) => return Ok(None),
            Err(source) => {
                return Err(SweepError::Tech {
                    mhz: cluster.mhz,
                    source,
                })
            }
        }
    }
    Ok(Some(ops))
}

/// The Pareto frontier of `points`: maximize UIPS, minimize server
/// watts. A point survives iff no other point has at least its
/// throughput at no more power (with one of the two strict). Returned in
/// ascending power order.
pub fn pareto_frontier(points: &[HeteroPoint]) -> Vec<HeteroPoint> {
    let mut sorted: Vec<&HeteroPoint> = points.iter().collect();
    // Cheapest first; at equal power the fastest first, so the scan
    // below keeps exactly one of each power level.
    sorted.sort_by(|a, b| {
        (a.watts().0, b.uips)
            .partial_cmp(&(b.watts().0, a.uips))
            .expect("finite power and throughput")
    });
    let mut frontier = Vec::new();
    let mut best_uips = f64::NEG_INFINITY;
    for p in sorted {
        if p.uips > best_uips {
            best_uips = p.uips;
            frontier.push(p.clone());
        }
    }
    frontier
}

/// Iso-power filter: the points within a server power budget.
pub fn iso_power(points: &[HeteroPoint], budget: Watts) -> Vec<HeteroPoint> {
    points
        .iter()
        .filter(|p| p.watts().0 <= budget.0)
        .cloned()
        .collect()
}

/// Iso-QoS filter: the points whose *slowest* core still sustains
/// `floor_uips` user instructions per second — a latency-critical
/// request pinned anywhere on the chip meets its service rate.
pub fn iso_qos(points: &[HeteroPoint], floor_uips: f64) -> Vec<HeteroPoint> {
    points
        .iter()
        .filter(|p| p.min_core_uips >= floor_uips)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crate::measure::{ClusterMeasurer, TableMeasurer};
    use crate::sweep::FrequencySweep;

    fn server() -> ServerModel {
        ServerConfig::paper().build().unwrap()
    }

    /// Big and little classes replay different synthetic curves; little
    /// is slower at equal frequency, like the real in-order core.
    fn synthetic_measure(class: CoreClass, mhz: f64) -> Result<ClusterMeasurement, MeasureError> {
        match class {
            CoreClass::Big => TableMeasurer::synthetic(3.2, 1.6).measure(mhz),
            CoreClass::Little => TableMeasurer::synthetic(1.8, 1.1).measure(mhz),
        }
    }

    #[test]
    fn homogeneous_big_plan_matches_the_frequency_sweep() {
        // A (clusters, 0) mix at one frequency must compose to exactly
        // the homogeneous sweep's point: same uips, same breakdown.
        let server = server();
        let n = server.clusters();
        let sweep = FrequencySweep::over(vec![1000.0]);
        let homog = sweep
            .run_serial(&server, &TableMeasurer::synthetic(3.2, 1.6))
            .unwrap();
        let expected = &homog.points()[0];

        let hetero = HeteroSweep::new(vec![1000.0], vec![], vec![(n, 0)]);
        let points = hetero.run(&server, synthetic_measure).unwrap();
        assert_eq!(points.len(), 1);
        let got = &points[0];
        assert!((got.uips - expected.uips).abs() < expected.uips * 1e-12);
        // Accumulation order differs (per-cluster sums vs one multiply),
        // so compare each component to relative precision, not bits.
        let close = |a: Watts, b: Watts| (a.0 - b.0).abs() <= b.0.abs() * 1e-12 + 1e-15;
        assert!(close(got.power.cores_dynamic, expected.power.cores_dynamic));
        assert!(close(got.power.cores_static, expected.power.cores_static));
        assert!(close(got.power.llc, expected.power.llc));
        assert!(close(got.power.xbar, expected.power.xbar));
        assert!(close(got.power.io, expected.power.io));
        assert!(close(
            got.power.dram_background,
            expected.power.dram_background
        ));
        assert!(close(got.power.dram_dynamic, expected.power.dram_dynamic));
        assert_eq!(got.ops[0], expected.op);
        assert_eq!(got.plan.counts(), (n, 0));
    }

    #[test]
    fn little_clusters_draw_less_core_power_at_equal_frequency() {
        let server = server();
        let n = server.clusters();
        let mixes = vec![(n, 0), (0, n)];
        let points = HeteroSweep::new(vec![800.0], vec![800.0], mixes)
            .run(&server, synthetic_measure)
            .unwrap();
        let all_big = points.iter().find(|p| p.plan.counts() == (n, 0)).unwrap();
        let all_little = points.iter().find(|p| p.plan.counts() == (0, n)).unwrap();
        assert!(
            all_little.power.cores().0 < all_big.power.cores().0 * 0.6,
            "little cores at 35% Ceff and higher vdd should still draw far less: {} vs {}",
            all_little.power.cores(),
            all_big.power.cores()
        );
        assert!(all_little.uips < all_big.uips, "little is slower");
    }

    #[test]
    fn mixes_enumerate_every_split_and_skip_unreachable_plans() {
        let server = server();
        // 3000 MHz is beyond both classes' rated range; those plans drop.
        let points = HeteroSweep::new(vec![1000.0, 3000.0], vec![600.0], vec![(2, 1), (1, 2)])
            .run(&server, synthetic_measure)
            .unwrap();
        assert_eq!(points.len(), 2, "one reachable big frequency x two mixes");
        assert!(points.iter().any(|p| p.plan.counts() == (2, 1)));
        assert!(points.iter().any(|p| p.plan.counts() == (1, 2)));
        for p in &points {
            assert_eq!(p.ops.len(), p.plan.clusters.len());
            assert!(p.min_core_uips > 0.0);
            assert!(p.min_core_uips <= p.uips);
        }
    }

    #[test]
    fn per_cluster_lifts_the_homogeneous_ladder() {
        let sweep = FrequencySweep::over(vec![500.0, 1000.0]);
        let hetero = sweep.per_cluster(vec![(1, 1)]);
        assert_eq!(hetero.big_ladder(), &[500.0, 1000.0]);
        assert_eq!(hetero.little_ladder(), &[500.0, 1000.0]);
        assert_eq!(hetero.mixes(), &[(1, 1)]);
    }

    #[test]
    fn pareto_frontier_keeps_only_undominated_points() {
        let server = server();
        let points = HeteroSweep::paper(3)
            .run(&server, synthetic_measure)
            .unwrap();
        let frontier = pareto_frontier(&points);
        assert!(!frontier.is_empty() && frontier.len() < points.len());
        // Ascending power, strictly ascending throughput.
        for w in frontier.windows(2) {
            assert!(w[0].watts().0 <= w[1].watts().0);
            assert!(w[0].uips < w[1].uips);
        }
        // No frontier point is dominated by any cloud point.
        for f in &frontier {
            assert!(!points.iter().any(|p| {
                (p.uips >= f.uips && p.watts().0 < f.watts().0)
                    || (p.uips > f.uips && p.watts().0 <= f.watts().0)
            }));
        }
    }

    #[test]
    fn iso_filters_respect_their_thresholds() {
        let server = server();
        let points = HeteroSweep::new(
            vec![400.0, 1600.0],
            vec![400.0, 1600.0],
            vec![(9, 0), (5, 4), (0, 9)],
        )
        .run(&server, synthetic_measure)
        .unwrap();
        let budget = Watts(60.0);
        let within = iso_power(&points, budget);
        assert!(!within.is_empty() && within.len() < points.len());
        assert!(within.iter().all(|p| p.watts().0 <= budget.0));

        let floor = points
            .iter()
            .map(|p| p.min_core_uips)
            .fold(f64::NEG_INFINITY, f64::max)
            * 0.5;
        let qos = iso_qos(&points, floor);
        assert!(!qos.is_empty() && qos.len() < points.len());
        assert!(qos.iter().all(|p| p.min_core_uips >= floor));
    }

    #[test]
    fn measurements_are_memoized_per_class_and_frequency() {
        use std::cell::Cell;
        let server = server();
        let calls = Cell::new(0u32);
        // 3 mixes x 1 big freq x 1 little freq, but only 2 distinct
        // (class, frequency) cluster configurations exist.
        HeteroSweep::new(vec![800.0], vec![800.0], vec![(9, 0), (5, 4), (0, 9)])
            .run(&server, |class, mhz| {
                calls.set(calls.get() + 1);
                synthetic_measure(class, mhz)
            })
            .unwrap();
        assert_eq!(calls.get(), 2);
    }

    #[test]
    fn plan_labels_are_compact() {
        assert_eq!(
            ChipPlan::big_little(3, 1600.0, 6, 600.0).label(),
            "3B@1600+6L@600"
        );
        assert_eq!(ChipPlan::big_little(9, 1000.0, 0, 0.0).label(), "9B@1000");
        assert_eq!(ChipPlan::big_little(0, 0.0, 9, 500.0).label(), "9L@500");
    }
}
