//! Greedy shrinking of a failing case.
//!
//! Given a diverging [`CaseShape`], repeatedly try size-reducing edits —
//! fewer clusters, fewer cores, fewer DRAM banks, shorter windows — and
//! keep any edit that still diverges. Passes repeat until a whole pass
//! makes no progress (a fixpoint) or the re-run budget is exhausted. The
//! result is the minimal config the bug still reproduces on, which is
//! what the repro command prints.

use crate::case::CaseShape;
use crate::oracle::{check, OraclePair};

/// Applies `edit` to a copy of `s`, returning it only if it changed.
fn tweak(s: &CaseShape, edit: impl FnOnce(&mut CaseShape)) -> Option<CaseShape> {
    let mut c = s.clone();
    edit(&mut c);
    (c != *s).then_some(c)
}

/// Candidate reductions, most aggressive first. Every candidate keeps
/// the config structurally valid by construction.
fn candidates(s: &CaseShape) -> Vec<CaseShape> {
    let mut v = Vec::new();
    let mut add = |c: Option<CaseShape>| {
        if let Some(c) = c {
            v.push(c);
        }
    };
    add(tweak(s, |c| {
        c.clusters = 1;
        c.use_chip = false;
        c.hetero.clear();
    }));
    add(tweak(s, |c| {
        c.clusters = 1;
        c.hetero.truncate(1);
    }));
    add(tweak(s, |c| {
        c.clusters = c.clusters.div_ceil(2);
        if !c.hetero.is_empty() {
            c.hetero.truncate(c.clusters as usize);
        }
    }));
    // A heterogeneous repro that survives with identical clusters is a
    // much smaller bug report.
    add(tweak(s, |c| c.hetero.clear()));
    add(tweak(s, |c| {
        if let Some(&first) = c.hetero.first() {
            c.hetero.iter_mut().for_each(|cl| *cl = first);
        }
    }));
    add(tweak(s, |c| {
        for cl in &mut c.hetero {
            cl.core_mhz = c.config.core_mhz;
        }
    }));
    add(tweak(s, |c| {
        c.config.cores = 1;
        c.hetero.iter_mut().for_each(|cl| cl.cores = 1);
    }));
    add(tweak(s, |c| {
        c.config.cores = c.config.cores.div_ceil(2);
        for cl in &mut c.hetero {
            cl.cores = cl.cores.div_ceil(2);
        }
    }));
    add(tweak(s, |c| c.config.dram.channels = 1));
    add(tweak(s, |c| c.config.dram.ranks = 1));
    add(tweak(s, |c| {
        c.config.dram.ranks = c.config.dram.ranks.div_ceil(2)
    }));
    add(tweak(s, |c| c.config.dram.bank_groups = 1));
    add(tweak(s, |c| {
        c.config.dram.bank_groups = c.config.dram.bank_groups.div_ceil(2);
    }));
    add(tweak(s, |c| c.config.dram.banks_per_group = 1));
    add(tweak(s, |c| {
        c.config.dram.banks_per_group = c.config.dram.banks_per_group.div_ceil(2);
    }));
    add(tweak(s, |c| c.config.llc.banks = 1));
    add(tweak(s, |c| c.warm_cycles = 0));
    add(tweak(s, |c| c.warm_cycles /= 2));
    add(tweak(s, |c| {
        c.measure_cycles = (c.measure_cycles / 2).max(250);
    }));
    add(tweak(s, |c| c.streams.truncate(1)));
    add(tweak(s, |c| {
        c.config.core.branch_predictor = None;
        for cl in &mut c.hetero {
            cl.core.branch_predictor = None;
        }
    }));
    add(tweak(s, |c| {
        c.config.core.prefetch_degree = 0;
        for cl in &mut c.hetero {
            cl.core.prefetch_degree = 0;
        }
    }));
    add(tweak(s, |c| {
        c.config.core.mshrs = c.config.core.mshrs.min(4);
        for cl in &mut c.hetero {
            cl.core.mshrs = cl.core.mshrs.min(4);
        }
    }));
    add(tweak(s, |c| {
        let keep = c.sweep.ladder.len().div_ceil(2);
        c.sweep.ladder.truncate(keep);
    }));
    add(tweak(s, |c| c.sweep.ladder.truncate(1)));
    add(tweak(s, |c| {
        c.percentile.count = (c.percentile.count / 2).max(1);
    }));
    v
}

/// Shrinks `shape` while the divergence on `pair` persists. Returns the
/// smallest still-failing shape found and how many oracle re-runs the
/// search spent (each candidate costs one differential run).
pub fn shrink(
    shape: &CaseShape,
    pair: OraclePair,
    mutate: bool,
    max_runs: u32,
) -> (CaseShape, u32) {
    let mut current = shape.clone();
    let mut runs = 0u32;
    let mut progress = true;
    while progress && runs < max_runs {
        progress = false;
        for candidate in candidates(&current) {
            if runs >= max_runs {
                break;
            }
            runs += 1;
            if check(pair, &candidate, mutate).is_some() {
                current = candidate;
                progress = true;
            }
        }
    }
    (current, runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_are_strictly_different_and_valid() {
        // Walk indices until both a homogeneous and a heterogeneous shape
        // have been exercised, so the hetero-editing candidates are
        // covered too.
        let mut seen_hetero = false;
        let mut seen_homo = false;
        for index in 0.. {
            let shape = CaseShape::generate(0x5151, index);
            seen_hetero |= !shape.hetero.is_empty();
            seen_homo |= shape.hetero.is_empty();
            for c in candidates(&shape) {
                assert_ne!(c, shape);
                c.config.validate().expect("candidate chip-wide config");
                c.chip_config().validate().expect("candidate chip config");
                if !c.hetero.is_empty() {
                    assert_eq!(c.hetero.len(), c.clusters as usize);
                }
            }
            if seen_hetero && seen_homo {
                break;
            }
        }
    }

    #[test]
    fn shrinking_a_passing_case_returns_it_unchanged() {
        // No candidate of a non-diverging case can diverge on a clean
        // tree, so the fixpoint is the input itself after one pass.
        let shape = CaseShape::generate(0xACCE55, 0);
        let (shrunk, runs) = shrink(&shape, OraclePair::Percentile, false, 100);
        assert_eq!(shrunk, shape);
        assert!(runs > 0);
    }
}
