//! Seed-reproducible case generation.
//!
//! A [`CaseShape`] is everything one differential check needs: a valid
//! (but arbitrary) simulator configuration, an instruction-stream mix,
//! and the inputs for the sweep and percentile oracles. The shape is a
//! pure function of `(seed, index)` — the same pair always regenerates
//! the same case, which is what makes the one-line repro command work —
//! and it is serializable, so a failing case can be dumped as an
//! artifact and inspected offline.

use ntc_sim::streams::{ComputeStream, PointerChaseStream, RandomAccessStream, StrideStream};
use ntc_sim::{
    CacheConfig, ChipConfig, ClusterConfig, CoreConfig, DramTimingConfig, Instr, InstructionStream,
    LlcConfig, PredictorKind, SimConfig, XbarConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// SplitMix64: decorrelates `(seed, index)` into one RNG seed so that
/// neighbouring case indices explore unrelated configurations.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A serializable recipe for one core's instruction stream.
///
/// Specs rather than live streams keep the shape `Clone + Serialize`;
/// [`StreamSpec::build`] instantiates a fresh stream, so the two runs of
/// a differential pair always see identical instruction sequences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StreamSpec {
    /// Branchy ALU-bound compute, no memory traffic.
    Compute {
        /// Branch misprediction rate in `[0, 1]`.
        mispredict: f64,
    },
    /// Sequential streaming over a large footprint.
    Stride {
        /// Address increment between loads (bytes).
        stride: u64,
        /// Footprint before wrapping (bytes).
        footprint: u64,
        /// Loads per instruction in `(0, 1]`.
        loads: f64,
    },
    /// Scattered loads over a working set (the scale-out profile).
    Random {
        /// Working-set size in bytes.
        working_set: u64,
        /// Loads per instruction in `(0, 1]`.
        loads: f64,
        /// Register dependency distance of each load.
        dep: u16,
        /// Stream RNG seed.
        seed: u64,
    },
    /// Serial pointer chasing (latency-bound).
    Chase {
        /// Working-set size in bytes.
        working_set: u64,
        /// ALU ops between dependent loads.
        gap: u32,
        /// Stream RNG seed.
        seed: u64,
    },
    /// Periodic stores to a small shared region: exercises coherence
    /// invalidations between cores and clusters.
    SharedStore {
        /// Number of shared cache lines cycled through.
        lines: u64,
        /// One store every `period` instructions.
        period: u64,
        /// Starting line offset (decorrelates cores).
        offset: u64,
    },
}

/// The stream behind [`StreamSpec::SharedStore`].
struct SharedStoreStream {
    lines: u64,
    period: u64,
    offset: u64,
    n: u64,
}

impl InstructionStream for SharedStoreStream {
    fn next_instr(&mut self) -> Instr {
        let i = self.n;
        self.n += 1;
        let pc = 0x4000 + (i % 512) * 4;
        if i % self.period == 0 {
            let line = (self.offset + i / self.period) % self.lines;
            Instr::store(pc, 0x8000_0000 + line * 64)
        } else {
            Instr::alu(pc)
        }
    }
}

impl StreamSpec {
    /// Instantiates a fresh stream for one differential run.
    pub fn build(&self) -> Box<dyn InstructionStream> {
        match *self {
            StreamSpec::Compute { mispredict } => Box::new(ComputeStream::new(mispredict)),
            StreamSpec::Stride {
                stride,
                footprint,
                loads,
            } => Box::new(StrideStream::new(stride, footprint, loads)),
            StreamSpec::Random {
                working_set,
                loads,
                dep,
                seed,
            } => Box::new(RandomAccessStream::new(working_set, loads, dep, seed)),
            StreamSpec::Chase {
                working_set,
                gap,
                seed,
            } => Box::new(PointerChaseStream::new(working_set, gap, seed)),
            StreamSpec::SharedStore {
                lines,
                period,
                offset,
            } => Box::new(SharedStoreStream {
                lines,
                period,
                offset,
                n: 0,
            }),
        }
    }
}

/// Input for the parallel-vs-serial sweep oracle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Frequency ladder in MHz (non-empty, all positive).
    pub ladder: Vec<f64>,
    /// Synthetic-measurer UIPC at the bottom of the ladder.
    pub uipc_low: f64,
    /// Synthetic-measurer UIPC at the top (`0 < high ≤ low`).
    pub uipc_high: f64,
}

/// Sample-population family for the percentile oracle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SampleKind {
    /// Uniform in `[0, max]`.
    Uniform {
        /// Largest sample value.
        max: u64,
    },
    /// Exact powers of two — every sample sits on a bucket edge.
    PowerOfTwo {
        /// Largest exponent generated.
        max_exp: u32,
    },
    /// Values of the form `2^k` and `2^k - 1` — both sides of each edge.
    Boundary,
    /// A single repeated value (degenerate distribution).
    Constant {
        /// The repeated value.
        value: u64,
    },
    /// Uniform values mixed with power-of-two spikes.
    Mixed {
        /// Largest uniform sample value.
        max: u64,
    },
}

/// Input for the histogram-vs-exact percentile oracle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PercentileSpec {
    /// Number of samples recorded.
    pub count: u32,
    /// Population family.
    pub kind: SampleKind,
    /// Sample RNG seed.
    pub seed: u64,
}

impl PercentileSpec {
    /// Regenerates the sample population (deterministic in the spec).
    pub fn samples(&self) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        (0..self.count)
            .map(|_| match self.kind {
                SampleKind::Uniform { max } => rng.gen_range(0..=max),
                SampleKind::PowerOfTwo { max_exp } => 1u64 << rng.gen_range(0..=max_exp),
                SampleKind::Boundary => {
                    let v = 1u64 << rng.gen_range(0..=40u32);
                    if rng.gen_bool(0.5) {
                        v
                    } else {
                        v - 1
                    }
                }
                SampleKind::Constant { value } => value,
                SampleKind::Mixed { max } => {
                    if rng.gen_bool(0.5) {
                        rng.gen_range(0..=max)
                    } else {
                        1u64 << rng.gen_range(0..=40u32)
                    }
                }
            })
            .collect()
    }
}

/// One complete differential test case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseShape {
    /// Harness seed the case was derived from.
    pub seed: u64,
    /// Case index under that seed.
    pub index: u64,
    /// Simulator configuration (always structurally valid).
    pub config: SimConfig,
    /// Clusters on the chip (1 may still use [`ntc_sim::ChipSim`]).
    pub clusters: u32,
    /// Whether to drive [`ntc_sim::ChipSim`] (vs [`ntc_sim::ClusterSim`]).
    pub use_chip: bool,
    /// Per-cluster configurations for a heterogeneous chip (mixed core
    /// classes and frequencies). Empty means a homogeneous chip built from
    /// `config`; otherwise the length equals `clusters` and only chip
    /// cases use it.
    pub hetero: Vec<ClusterConfig>,
    /// Unmeasured warm-up cycles before the window.
    pub warm_cycles: u64,
    /// Measured window length in cycles.
    pub measure_cycles: u64,
    /// Stream mix; core `(cl, c)` uses spec `(cl·cores + c) mod len`.
    pub streams: Vec<StreamSpec>,
    /// Sweep-oracle input.
    pub sweep: SweepSpec,
    /// Percentile-oracle input.
    pub percentile: PercentileSpec,
}

fn pick<T: Copy>(rng: &mut SmallRng, choices: &[T]) -> T {
    choices[rng.gen_range(0..choices.len())]
}

fn arbitrary_cache(
    rng: &mut SmallRng,
    set_exp: std::ops::RangeInclusive<u32>,
    ways: &[u32],
) -> CacheConfig {
    let sets = 1u64 << rng.gen_range(set_exp);
    let ways = pick(rng, ways);
    CacheConfig::new(sets * u64::from(ways) * 64, ways)
}

fn arbitrary_core(rng: &mut SmallRng) -> CoreConfig {
    let branch_predictor = match rng.gen_range(0..10u32) {
        0 => Some(PredictorKind::StaticNotTaken),
        1 => Some(PredictorKind::Bimodal {
            log2_entries: rng.gen_range(8..=12),
        }),
        2 => Some(PredictorKind::Gshare {
            log2_entries: rng.gen_range(8..=12),
            history_bits: rng.gen_range(4..=12),
        }),
        _ => None,
    };
    CoreConfig {
        width: rng.gen_range(1..=4),
        rob_entries: rng.gen_range(16..=160),
        l1i: arbitrary_cache(rng, 5..=9, &[1, 2, 4]),
        l1d: arbitrary_cache(rng, 5..=9, &[1, 2, 4]),
        l1_latency: rng.gen_range(1..=4),
        mshrs: rng.gen_range(1..=12),
        branch_penalty: rng.gen_range(8..=20),
        long_op_latency: rng.gen_range(3..=8),
        store_buffer: rng.gen_range(4..=32),
        prefetch_degree: rng.gen_range(0..=2),
        branch_predictor,
        in_order: rng.gen_bool(0.2),
    }
}

fn arbitrary_dram(rng: &mut SmallRng) -> DramTimingConfig {
    DramTimingConfig {
        tck_ps: pick(rng, &[833, 1000, 1250, 1875]),
        cl: rng.gen_range(10..=22),
        trcd: rng.gen_range(10..=22),
        trp: rng.gen_range(10..=22),
        tras: rng.gen_range(28..=52),
        twr: rng.gen_range(10..=20),
        tccd: rng.gen_range(4..=8),
        trrd: rng.gen_range(4..=8),
        tfaw: rng.gen_range(16..=40),
        cwl: rng.gen_range(9..=18),
        burst_beats: pick(rng, &[4, 8]),
        channels: rng.gen_range(1..=4),
        ranks: pick(rng, &[1, 2, 4]),
        bank_groups: pick(rng, &[1, 2, 4]),
        banks_per_group: pick(rng, &[1, 2, 4]),
        row_bytes: 1024u64 << rng.gen_range(0..=3u32),
    }
}

fn arbitrary_config(rng: &mut SmallRng) -> SimConfig {
    SimConfig {
        cores: rng.gen_range(1..=6),
        core_mhz: rng.gen_range(100.0..=2000.0),
        core: arbitrary_core(rng),
        llc: LlcConfig {
            cache: arbitrary_cache(rng, 6..=12, &[4, 8, 16]),
            banks: pick(rng, &[1, 2, 4, 8]),
            bank_service_ps: rng.gen_range(1_000..=4_000),
            invalidate_ps: rng.gen_range(4_000..=20_000),
        },
        xbar: XbarConfig {
            traversal_ps: rng.gen_range(500..=2_000),
            port_occupancy_ps: rng.gen_range(250..=1_000),
        },
        dram: arbitrary_dram(rng),
        seed: rng.gen(),
    }
}

fn arbitrary_stream(rng: &mut SmallRng) -> StreamSpec {
    match rng.gen_range(0..5u32) {
        0 => StreamSpec::Compute {
            mispredict: rng.gen_range(0.0..0.05),
        },
        1 => StreamSpec::Stride {
            stride: 64 * rng.gen_range(1..=16u64),
            footprint: 1u64 << rng.gen_range(16..=26u32),
            loads: rng.gen_range(0.05..0.45),
        },
        2 => StreamSpec::Random {
            working_set: 1u64 << rng.gen_range(14..=26u32),
            loads: rng.gen_range(0.05..0.45),
            dep: rng.gen_range(0..=8u16),
            seed: rng.gen(),
        },
        3 => StreamSpec::Chase {
            working_set: 1u64 << rng.gen_range(12..=22u32),
            gap: rng.gen_range(0..=8u32),
            seed: rng.gen(),
        },
        _ => StreamSpec::SharedStore {
            lines: rng.gen_range(1..=64u64),
            period: rng.gen_range(1..=32u64),
            offset: rng.gen_range(0..64u64),
        },
    }
}

fn arbitrary_sweep(rng: &mut SmallRng) -> SweepSpec {
    let mut ladder: Vec<f64> = (1..=20)
        .map(|i| f64::from(i) * 100.0)
        .filter(|_| rng.gen_bool(0.4))
        .collect();
    if ladder.is_empty() {
        ladder.push(f64::from(rng.gen_range(1..=20u32)) * 100.0);
    }
    let uipc_low = rng.gen_range(1.2..4.0);
    let uipc_high = uipc_low * rng.gen_range(0.2..=1.0);
    SweepSpec {
        ladder,
        uipc_low,
        uipc_high,
    }
}

fn arbitrary_percentile(rng: &mut SmallRng) -> PercentileSpec {
    let kind = match rng.gen_range(0..5u32) {
        0 => SampleKind::Uniform {
            max: rng.gen_range(1..=1u64 << 48),
        },
        1 => SampleKind::PowerOfTwo {
            max_exp: rng.gen_range(4..=48),
        },
        2 => SampleKind::Boundary,
        3 => SampleKind::Constant {
            value: rng.gen_range(0..=1u64 << 32),
        },
        _ => SampleKind::Mixed {
            max: rng.gen_range(1..=1u64 << 48),
        },
    };
    PercentileSpec {
        count: rng.gen_range(50..=2_000),
        kind,
        seed: rng.gen(),
    }
}

impl CaseShape {
    /// Derives case `index` of harness run `seed`. Pure: the same pair
    /// always yields the same shape, so `--seed N --case M` reproduces.
    pub fn generate(seed: u64, index: u64) -> CaseShape {
        let mut rng = SmallRng::seed_from_u64(splitmix64(
            seed ^ splitmix64(index.wrapping_add(0xA5A5_5A5A)),
        ));
        let config = arbitrary_config(&mut rng);
        let clusters = rng.gen_range(1..=3u32);
        let use_chip = clusters > 1 || rng.gen_bool(0.5);
        // Heterogeneous chips: a per-cluster mix of core classes and
        // frequencies, so every oracle pair fuzzes the independent clock
        // domains (and the little in-order core) against the shared DRAM.
        let hetero = if use_chip && rng.gen_bool(0.4) {
            (0..clusters)
                .map(|_| {
                    let mut cl = config.cluster();
                    cl.core_mhz = rng.gen_range(100.0..=2000.0);
                    match rng.gen_range(0..3u32) {
                        0 => cl.core = CoreConfig::little_inorder(),
                        1 => cl.core = arbitrary_core(&mut rng),
                        _ => {}
                    }
                    cl
                })
                .collect()
        } else {
            Vec::new()
        };
        let streams = (0..rng.gen_range(1..=4usize))
            .map(|_| arbitrary_stream(&mut rng))
            .collect();
        CaseShape {
            seed,
            index,
            config,
            clusters,
            use_chip,
            hetero,
            warm_cycles: rng.gen_range(0..=1_500),
            measure_cycles: rng.gen_range(1_000..=5_000),
            streams,
            sweep: arbitrary_sweep(&mut rng),
            percentile: arbitrary_percentile(&mut rng),
        }
    }

    /// The chip configuration this case drives: the heterogeneous
    /// per-cluster vector when one was generated, otherwise `clusters`
    /// copies of the chip-wide config.
    pub fn chip_config(&self) -> ChipConfig {
        if self.hetero.is_empty() {
            ChipConfig::homogeneous(&self.config, self.clusters)
        } else {
            ChipConfig {
                clusters: self.hetero.clone(),
                dram: self.config.dram,
                seed: self.config.seed,
            }
        }
    }

    /// The stream for core `core` of cluster `cluster`.
    pub fn stream(&self, cluster: u32, core: u32) -> Box<dyn InstructionStream> {
        let i =
            (cluster as usize * self.config.cores as usize + core as usize) % self.streams.len();
        self.streams[i].build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed_and_index() {
        let a = CaseShape::generate(42, 7);
        let b = CaseShape::generate(42, 7);
        assert_eq!(a, b);
        assert_ne!(a, CaseShape::generate(42, 8));
        assert_ne!(a, CaseShape::generate(43, 7));
    }

    #[test]
    fn generated_configs_are_always_valid() {
        let mut saw_hetero = false;
        for index in 0..200 {
            let shape = CaseShape::generate(0xC0FFEE, index);
            // The generator promises never to produce a structurally
            // invalid config — for the chip-wide path or the
            // heterogeneous per-cluster one.
            shape.config.validate().expect("chip-wide config valid");
            shape.chip_config().validate().expect("chip config valid");
            if !shape.hetero.is_empty() {
                saw_hetero = true;
                assert_eq!(shape.hetero.len(), shape.clusters as usize);
                assert!(shape.use_chip, "hetero cases must drive ChipSim");
            }
            assert!(!shape.streams.is_empty());
            assert!(!shape.sweep.ladder.is_empty());
            assert!(shape.sweep.uipc_low >= shape.sweep.uipc_high);
            assert!(shape.sweep.uipc_high > 0.0);
            assert!(shape.percentile.count > 0);
            assert!(shape.measure_cycles >= 1_000);
        }
        assert!(
            saw_hetero,
            "200 cases must include heterogeneous chips (generation drifted?)"
        );
    }

    #[test]
    fn shapes_round_trip_through_serde() {
        let shape = CaseShape::generate(1, 2);
        let json = serde_json::to_string(&shape).unwrap();
        let back: CaseShape = serde_json::from_str(&json).unwrap();
        assert_eq!(shape, back);
    }

    #[test]
    fn percentile_samples_are_reproducible() {
        let spec = CaseShape::generate(9, 9).percentile;
        assert_eq!(spec.samples(), spec.samples());
        assert_eq!(spec.samples().len(), spec.count as usize);
    }
}
