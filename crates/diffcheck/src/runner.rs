//! The budgeted differential-check loop.
//!
//! [`run`] walks case indices from a single seed, round-robins them over
//! the selected oracle pairs, and stops on a time budget, a case cap, or
//! after collecting enough divergences. Each divergence is shrunk (see
//! [`crate::shrink`]) and reported with a one-line repro command.

use crate::case::CaseShape;
use crate::oracle::{check, OraclePair};
use crate::shrink::shrink;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Cases to run when neither a budget nor a case cap is given.
pub const DEFAULT_CASES: u64 = 200;

/// Oracle re-runs the shrinker may spend per divergence. Shrunk cases
/// are small (the first accepted candidates slash the cycle counts), so
/// individual re-runs are cheap and a generous cap buys minimality.
pub const SHRINK_BUDGET_RUNS: u32 = 600;

/// Knobs for one harness invocation.
#[derive(Debug, Clone)]
pub struct DiffcheckOptions {
    /// Master seed; every case derives from `(seed, index)`.
    pub seed: u64,
    /// First case index (the repro path sets this to the failing case).
    pub start_case: u64,
    /// Stop after this many cases (`None` = unbounded).
    pub max_cases: Option<u64>,
    /// Stop once this much wall-clock has elapsed (`None` = unbounded).
    pub budget: Option<Duration>,
    /// Pairs to exercise; empty means all seven.
    pub pairs: Vec<OraclePair>,
    /// Inject the deliberate scheduler fault (harness self-test).
    pub mutate: bool,
    /// Shrink divergences before reporting.
    pub shrink: bool,
    /// Stop after this many divergences (shrinking is expensive).
    pub max_divergences: usize,
}

impl Default for DiffcheckOptions {
    fn default() -> Self {
        DiffcheckOptions {
            seed: 0x5EED_0001,
            start_case: 0,
            max_cases: None,
            budget: None,
            pairs: Vec::new(),
            mutate: false,
            shrink: true,
            max_divergences: 3,
        }
    }
}

/// Per-pair case/divergence counts.
#[derive(Debug, Clone, Serialize)]
pub struct PairTally {
    /// The oracle pair.
    pub pair: OraclePair,
    /// Cases routed to it.
    pub cases: u64,
    /// Divergences it reported.
    pub divergences: u64,
}

/// One shrunk, reportable divergence.
#[derive(Debug, Clone, Serialize)]
pub struct DivergenceReport {
    /// Harness seed.
    pub seed: u64,
    /// Index of the originally failing case.
    pub case_index: u64,
    /// The pair that disagreed.
    pub pair: OraclePair,
    /// First-difference description (from the shrunk case).
    pub detail: String,
    /// The minimal still-failing shape.
    pub shrunk: CaseShape,
    /// Oracle re-runs the shrinker spent.
    pub shrink_runs: u32,
}

impl DivergenceReport {
    /// The one-line command that regenerates and re-checks this case.
    pub fn repro_command(&self) -> String {
        format!(
            "ntc-diffcheck --seed {} --case {} --pair {}",
            self.seed,
            self.case_index,
            self.pair.name()
        )
    }
}

/// The outcome of one harness invocation.
#[derive(Debug, Clone)]
pub struct Report {
    /// Harness seed.
    pub seed: u64,
    /// Total cases checked.
    pub cases: u64,
    /// Wall-clock spent.
    pub elapsed: Duration,
    /// Per-pair counts (one entry per selected pair).
    pub tallies: Vec<PairTally>,
    /// Shrunk divergences, in discovery order.
    pub divergences: Vec<DivergenceReport>,
}

impl Report {
    /// Whether every case agreed with its reference.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// A terminal-friendly multi-line summary.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "seed {:#x}: {} cases in {:.1}s across {} oracle pair(s)\n",
            self.seed,
            self.cases,
            self.elapsed.as_secs_f64(),
            self.tallies.len()
        );
        for t in &self.tallies {
            out.push_str(&format!(
                "  {:<11} {:>6} cases  {}\n",
                t.pair.name(),
                t.cases,
                if t.divergences == 0 {
                    "ok".to_string()
                } else {
                    format!("{} DIVERGENCE(S)", t.divergences)
                }
            ));
        }
        out.push_str(&format!("{} divergence(s)", self.divergences.len()));
        out
    }
}

/// Runs the differential harness to its budget.
pub fn run(opts: &DiffcheckOptions) -> Report {
    let start = Instant::now();
    let pairs: Vec<OraclePair> = if opts.pairs.is_empty() {
        OraclePair::ALL.to_vec()
    } else {
        opts.pairs.clone()
    };
    // With no explicit bound at all, fall back to a fixed case count so
    // a bare `run` always terminates.
    let case_cap = match (opts.max_cases, opts.budget) {
        (None, None) => Some(DEFAULT_CASES),
        (cap, _) => cap,
    };
    let mut tallies: Vec<PairTally> = pairs
        .iter()
        .map(|&pair| PairTally {
            pair,
            cases: 0,
            divergences: 0,
        })
        .collect();
    let mut divergences = Vec::new();
    let mut cases = 0u64;
    loop {
        if let Some(cap) = case_cap {
            if cases >= cap {
                break;
            }
        }
        if let Some(budget) = opts.budget {
            // Always run at least one case so a tiny budget still checks
            // something (and the repro path always re-runs its case).
            if cases > 0 && start.elapsed() >= budget {
                break;
            }
        }
        let index = opts.start_case + cases;
        let slot = (cases % pairs.len() as u64) as usize;
        let pair = pairs[slot];
        let shape = CaseShape::generate(opts.seed, index);
        cases += 1;
        tallies[slot].cases += 1;
        let Some(found) = check(pair, &shape, opts.mutate) else {
            continue;
        };
        tallies[slot].divergences += 1;
        let (shrunk, shrink_runs) = if opts.shrink {
            shrink(&shape, pair, opts.mutate, SHRINK_BUDGET_RUNS)
        } else {
            (shape.clone(), 0)
        };
        // Re-describe on the shrunk case so the detail matches the shape
        // the report carries; fall back to the original description if
        // shrinking somehow lost the divergence.
        let detail = check(pair, &shrunk, opts.mutate)
            .map(|d| d.detail)
            .unwrap_or(found.detail);
        divergences.push(DivergenceReport {
            seed: opts.seed,
            case_index: index,
            pair,
            detail,
            shrunk,
            shrink_runs,
        });
        if divergences.len() >= opts.max_divergences {
            break;
        }
    }
    Report {
        seed: opts.seed,
        cases,
        elapsed: start.elapsed(),
        tallies,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_bare_run_terminates_at_the_default_case_cap() {
        let opts = DiffcheckOptions {
            max_cases: Some(10),
            shrink: false,
            ..DiffcheckOptions::default()
        };
        let report = run(&opts);
        assert_eq!(report.cases, 10);
        assert_eq!(report.tallies.len(), 7);
        assert_eq!(report.tallies.iter().map(|t| t.cases).sum::<u64>(), 10);
    }

    #[test]
    fn a_time_budget_runs_at_least_one_case() {
        let opts = DiffcheckOptions {
            budget: Some(Duration::ZERO),
            pairs: vec![OraclePair::Percentile],
            ..DiffcheckOptions::default()
        };
        let report = run(&opts);
        assert_eq!(report.cases, 1);
    }

    #[test]
    fn repro_commands_name_seed_case_and_pair() {
        let r = DivergenceReport {
            seed: 7,
            case_index: 12,
            pair: OraclePair::DramSched,
            detail: String::new(),
            shrunk: CaseShape::generate(7, 12),
            shrink_runs: 0,
        };
        assert_eq!(
            r.repro_command(),
            "ntc-diffcheck --seed 7 --case 12 --pair dram-sched"
        );
    }
}
