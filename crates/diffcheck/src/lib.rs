// `is_multiple_of` stabilized after this workspace's MSRV (1.75); the
// manual `% == 0` form stays until the MSRV moves.
#![allow(clippy::manual_is_multiple_of)]

//! Differential fuzz harness for the simulator's fast paths.
//!
//! Every performance-critical path in this workspace is shadowed by a
//! simple reference implementation: the cycle-skip engine by the naive
//! tick loop, the indexed FR-FCFS scheduler by a scan-everything oracle,
//! the probed simulator by a plain run, the parallel sweep by its serial
//! twin, the power-of-two histogram by exact sorted percentiles, and the
//! energy probe's windowed attribution by the cumulative run counters.
//! This crate turns that redundancy into a randomized checker:
//!
//! 1. [`CaseShape::generate`] derives an arbitrary-but-valid simulator
//!    configuration and instruction-stream mix from `(seed, index)` —
//!    cluster and chip shapes, cache geometries, DRAM channel/bank
//!    layouts, frequencies from 100 MHz to 2 GHz.
//! 2. [`oracle::check`] runs the case through one fast/reference pair
//!    and demands bit-identical [`ntc_sim::SimStats`] (bounded error for
//!    percentiles, which are lossy by design).
//! 3. On divergence, [`shrink::shrink`] greedily reduces the case to a
//!    minimal still-failing shape, and the report carries a one-line
//!    repro command (`ntc-diffcheck --seed N --case M --pair P`).
//!
//! The `ntc-diffcheck` binary wraps [`runner::run`] with a time/case
//! budget for CI: a short PR-gated smoke run and a long nightly soak.
//! The harness validates itself with a mutation check: `--mutate`
//! injects a deliberate scheduler bug that the dram-sched pair must
//! catch and shrink (see `DESIGN.md`, Verification).

#![warn(missing_docs)]

pub mod case;
pub mod oracle;
pub mod runner;
pub mod shrink;

pub use case::{CaseShape, PercentileSpec, SampleKind, StreamSpec, SweepSpec};
pub use oracle::{check, Divergence, OraclePair};
pub use runner::{run, DiffcheckOptions, DivergenceReport, PairTally, Report};
pub use shrink::shrink;
