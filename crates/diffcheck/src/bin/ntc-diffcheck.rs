//! Differential fuzz harness CLI.
//!
//! ```text
//! ntc-diffcheck [--seed N] [--case M] [--pair NAME]... [--budget 30s|10m]
//!               [--cases K] [--mutate] [--no-shrink] [--artifact PATH]
//! ```
//!
//! Exit status: 0 when every case agreed with its reference, 1 on any
//! divergence (a JSON artifact with the shrunk case is written for CI to
//! upload), 2 on a usage error.

use ntc_diffcheck::{run, DiffcheckOptions, OraclePair};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
ntc-diffcheck — differential fuzz harness for the sim fast paths

USAGE:
    ntc-diffcheck [OPTIONS]

OPTIONS:
    --seed N         Master seed (decimal or 0x-hex). Default 0x5EED0001.
    --case M         Check only case index M (the repro path).
    --pair NAME      Restrict to one oracle pair; repeatable. Names:
                     cycle-skip, dram-sched, telemetry, sweep, percentile,
                     energy-probe.
    --budget DUR     Wall-clock budget: 500ms, 30s, 10m. Default 30s.
    --cases K        Stop after K cases (overrides the default budget).
    --mutate         Inject the deliberate scheduler fault (self-test:
                     the dram-sched pair must catch it).
    --no-shrink      Report divergences without shrinking them.
    --artifact PATH  Where to write the failing-case JSON.
                     Default diffcheck-failure.json.
    --help           This text.
";

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_budget(s: &str) -> Option<Duration> {
    if let Some(ms) = s.strip_suffix("ms") {
        return ms.parse().ok().map(Duration::from_millis);
    }
    if let Some(secs) = s.strip_suffix('s') {
        return secs.parse().ok().map(Duration::from_secs);
    }
    if let Some(mins) = s.strip_suffix('m') {
        return mins
            .parse::<u64>()
            .ok()
            .map(|m| Duration::from_secs(m * 60));
    }
    s.parse().ok().map(Duration::from_secs)
}

struct Cli {
    opts: DiffcheckOptions,
    artifact: String,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut opts = DiffcheckOptions::default();
    let mut artifact = "diffcheck-failure.json".to_string();
    let mut budget: Option<Duration> = None;
    let mut cases: Option<u64> = None;
    let mut only_case: Option<u64> = None;
    let mut i = 0;
    let next = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                let v = next(&mut i, "--seed")?;
                opts.seed = parse_u64(&v).ok_or_else(|| format!("bad seed: {v}"))?;
            }
            "--case" => {
                let v = next(&mut i, "--case")?;
                only_case = Some(parse_u64(&v).ok_or_else(|| format!("bad case index: {v}"))?);
            }
            "--pair" => {
                let v = next(&mut i, "--pair")?;
                let pair = OraclePair::parse(&v).ok_or_else(|| format!("unknown pair: {v}"))?;
                opts.pairs.push(pair);
            }
            "--budget" => {
                let v = next(&mut i, "--budget")?;
                budget = Some(parse_budget(&v).ok_or_else(|| format!("bad budget: {v}"))?);
            }
            "--cases" => {
                let v = next(&mut i, "--cases")?;
                cases = Some(parse_u64(&v).ok_or_else(|| format!("bad case count: {v}"))?);
            }
            "--mutate" => opts.mutate = true,
            "--no-shrink" => opts.shrink = false,
            "--artifact" => artifact = next(&mut i, "--artifact")?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    if let Some(case) = only_case {
        opts.start_case = case;
        opts.max_cases = Some(cases.unwrap_or(1));
    } else {
        opts.max_cases = cases;
    }
    // Default to a 30 s smoke budget unless the caller bounded the run
    // some other way.
    opts.budget = budget.or(if opts.max_cases.is_none() {
        Some(Duration::from_secs(30))
    } else {
        None
    });
    Ok(Cli { opts, artifact })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("ntc-diffcheck: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = run(&cli.opts);
    println!("{}", report.summary());
    if report.clean() {
        return ExitCode::SUCCESS;
    }
    for d in &report.divergences {
        println!();
        println!(
            "DIVERGENCE: pair {} at case {} (shrunk in {} re-runs)",
            d.pair.name(),
            d.case_index,
            d.shrink_runs
        );
        println!("  {}", d.detail);
        println!(
            "  shrunk: {} cluster(s) x {} core(s), {} DRAM channel(s) x {} bank(s), {} cycles",
            d.shrunk.clusters,
            d.shrunk.config.cores,
            d.shrunk.config.dram.channels,
            d.shrunk.config.dram.banks_per_channel(),
            d.shrunk.measure_cycles
        );
        println!("  repro: {}", d.repro_command());
    }
    match serde_json::to_string(&report.divergences) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&cli.artifact, json) {
                eprintln!("ntc-diffcheck: could not write {}: {e}", cli.artifact);
            } else {
                println!();
                println!("failing cases written to {}", cli.artifact);
            }
        }
        Err(e) => eprintln!("ntc-diffcheck: could not serialize divergences: {e}"),
    }
    ExitCode::FAILURE
}
