//! The seven fast/reference oracle pairs.
//!
//! Each pair runs the same [`CaseShape`] through an optimised path and a
//! simple reference path and demands identical results — bit-identical
//! [`SimStats`] for the simulator pairs, point-identical sweeps, and the
//! structural bucket identity (plus the 2× error bound) for histogram
//! percentiles. The energy-probe pair additionally demands that the
//! probe's activity windows partition the run exactly: every windowed
//! counter must sum back to the cumulative [`SimStats`] total, integer
//! for integer. Any mismatch comes back as a [`Divergence`] whose detail
//! names the first differing counters.

use crate::case::CaseShape;
use ntc_core::{FrequencySweep, ServerConfig, TableMeasurer};
use ntc_sim::{
    ActivityWindow, ChipSim, ClusterSim, EnergyProbe, InstructionStream, Probe, SimStats,
    TimeSeriesProbe,
};
use ntc_telemetry::metrics::{bucket_index, bucket_upper_bound};
use ntc_telemetry::Histogram;
use serde::{Deserialize, Serialize};

/// One fast/reference implementation pair under differential test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OraclePair {
    /// Cycle-skip fast path vs the naive tick-every-cycle loop.
    CycleSkip,
    /// Indexed FR-FCFS DRAM scheduler vs the scan-everything reference.
    DramSched,
    /// Probed/traced simulation vs a plain run (telemetry must be inert).
    Telemetry,
    /// Parallel frequency sweep vs the serial baseline.
    Sweep,
    /// Histogram p50/p90/p99 vs exact sorted percentiles.
    Percentile,
    /// Energy-probed simulation vs a plain run (bit-identity), plus the
    /// windowed-activity closure: summed window deltas must equal the
    /// cumulative counters exactly.
    EnergyProbe,
    /// Epoch-barrier parallel chip engine (clusters on worker threads)
    /// vs the serial interleaving, with the cycle-skip fast path both on
    /// and off. Always drives a [`ChipSim`], heterogeneous when the case
    /// generated one.
    ParallelChip,
}

impl OraclePair {
    /// Every pair, in round-robin order.
    pub const ALL: [OraclePair; 7] = [
        OraclePair::CycleSkip,
        OraclePair::DramSched,
        OraclePair::Telemetry,
        OraclePair::Sweep,
        OraclePair::Percentile,
        OraclePair::EnergyProbe,
        OraclePair::ParallelChip,
    ];

    /// The CLI name (`--pair` value).
    pub fn name(self) -> &'static str {
        match self {
            OraclePair::CycleSkip => "cycle-skip",
            OraclePair::DramSched => "dram-sched",
            OraclePair::Telemetry => "telemetry",
            OraclePair::Sweep => "sweep",
            OraclePair::Percentile => "percentile",
            OraclePair::EnergyProbe => "energy-probe",
            OraclePair::ParallelChip => "parallel-chip",
        }
    }

    /// Parses a CLI name back to a pair.
    pub fn parse(s: &str) -> Option<OraclePair> {
        OraclePair::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// A detected fast/reference mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// The pair that disagreed.
    pub pair: OraclePair,
    /// Human-readable description of the first difference.
    pub detail: String,
}

/// Which switches a single simulator run flips.
#[derive(Clone, Copy)]
struct Knobs {
    cycle_skip: bool,
    reference_sched: bool,
    mutate: bool,
    probed: bool,
    /// Worker threads for the chip engine (1 = serial reference).
    threads: usize,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            cycle_skip: true,
            reference_sched: false,
            mutate: false,
            probed: false,
            threads: 1,
        }
    }
}

fn drive<S>(sim: &mut S, shape: &CaseShape) -> (SimStats, SimStats)
where
    S: SimDriver,
{
    if shape.warm_cycles > 0 {
        sim.warm(shape.warm_cycles);
    }
    let window = sim.measure(shape.measure_cycles);
    let total = sim.totals();
    (window, total)
}

/// The tiny common surface of [`ClusterSim`] and [`ChipSim`] the harness
/// needs, so one `drive` loop serves both engines.
trait SimDriver {
    fn warm(&mut self, cycles: u64);
    fn measure(&mut self, cycles: u64) -> SimStats;
    fn totals(&self) -> SimStats;
}

impl<S: InstructionStream> SimDriver for ClusterSim<S> {
    fn warm(&mut self, cycles: u64) {
        self.warm_up(cycles);
    }
    fn measure(&mut self, cycles: u64) -> SimStats {
        self.run_measured(cycles)
    }
    fn totals(&self) -> SimStats {
        self.stats()
    }
}

impl<S: InstructionStream> SimDriver for ChipSim<S> {
    fn warm(&mut self, cycles: u64) {
        self.run(cycles);
    }
    fn measure(&mut self, cycles: u64) -> SimStats {
        self.run_measured(cycles)
    }
    fn totals(&self) -> SimStats {
        self.stats()
    }
}

/// Runs the shape once under the given knob settings.
fn run_shape(shape: &CaseShape, k: Knobs) -> (SimStats, SimStats) {
    let probe = k
        .probed
        .then(|| Box::new(TimeSeriesProbe::new()) as Box<dyn Probe>);
    run_shape_probed(shape, k, probe)
}

/// Runs the shape with an explicit probe (or none) attached before the
/// warm-up, so windowed probes observe the entire run.
fn run_shape_probed(
    shape: &CaseShape,
    k: Knobs,
    probe: Option<Box<dyn Probe>>,
) -> (SimStats, SimStats) {
    if shape.use_chip {
        let mut sim = ChipSim::new_chip(shape.chip_config(), |cl, c| shape.stream(cl, c));
        sim.set_cycle_skip(k.cycle_skip);
        sim.set_threads(k.threads);
        sim.set_reference_dram_scheduler(k.reference_sched);
        sim.set_dram_scheduler_mutation(k.mutate);
        if let Some(probe) = probe {
            sim.attach_probe(probe);
        }
        drive(&mut sim, shape)
    } else {
        let mut sim = ClusterSim::new(shape.config, |c| shape.stream(0, c));
        sim.set_cycle_skip(k.cycle_skip);
        sim.set_reference_dram_scheduler(k.reference_sched);
        sim.set_dram_scheduler_mutation(k.mutate);
        if let Some(probe) = probe {
            sim.attach_probe(probe);
        }
        drive(&mut sim, shape)
    }
}

/// Describes the first difference between two `(window, final)` stat
/// pairs — enough to see *which* counter family diverged without dumping
/// two full structs.
fn describe(a: &(SimStats, SimStats), b: &(SimStats, SimStats)) -> String {
    for (scope, x, y) in [("window", &a.0, &b.0), ("final", &a.1, &b.1)] {
        if x == y {
            continue;
        }
        let mut parts = Vec::new();
        if x.cycles != y.cycles {
            parts.push(format!("cycles {} vs {}", x.cycles, y.cycles));
        }
        if x.wall_ps != y.wall_ps {
            parts.push(format!("wall_ps {} vs {}", x.wall_ps, y.wall_ps));
        }
        if x.user_instrs() != y.user_instrs() {
            parts.push(format!(
                "user_instrs {} vs {}",
                x.user_instrs(),
                y.user_instrs()
            ));
        }
        if x.xbar_transfers != y.xbar_transfers {
            parts.push(format!(
                "xbar_transfers {} vs {}",
                x.xbar_transfers, y.xbar_transfers
            ));
        }
        if x.dram_queue_high_water != y.dram_queue_high_water {
            parts.push(format!(
                "dram_queue_high_water {} vs {}",
                x.dram_queue_high_water, y.dram_queue_high_water
            ));
        }
        if x.dram_channel_queue_high_water != y.dram_channel_queue_high_water {
            parts.push(format!(
                "dram_channel_queue_high_water {:?} vs {:?}",
                x.dram_channel_queue_high_water, y.dram_channel_queue_high_water
            ));
        }
        if x.llc != y.llc {
            parts.push(format!("llc {:?} vs {:?}", x.llc, y.llc));
        }
        if x.dram != y.dram {
            parts.push(format!("dram {:?} vs {:?}", x.dram, y.dram));
        }
        if x.cores != y.cores {
            parts.push("per-core counters differ".to_string());
        }
        return format!("{scope} stats diverge: {}", parts.join("; "));
    }
    "stats diverge".to_string()
}

fn check_sim_pair(
    pair: OraclePair,
    shape: &CaseShape,
    fast: Knobs,
    reference: Knobs,
) -> Option<Divergence> {
    let a = run_shape(shape, fast);
    let b = run_shape(shape, reference);
    (a != b).then(|| Divergence {
        pair,
        detail: describe(&a, &b),
    })
}

fn check_sweep(shape: &CaseShape) -> Option<Divergence> {
    let spec = &shape.sweep;
    let server = ServerConfig::paper().build().expect("paper server model");
    let measurer = TableMeasurer::synthetic(spec.uipc_low, spec.uipc_high);
    let sweep = FrequencySweep::over(spec.ladder.clone());
    let parallel = sweep.run(&server, &measurer);
    let serial = sweep.run_serial(&server, &measurer);
    let detail = match (parallel, serial) {
        (Ok(p), Ok(s)) => {
            if p.points() == s.points() {
                return None;
            }
            let first = p
                .points()
                .iter()
                .zip(s.points())
                .find(|(a, b)| a != b)
                .map(|(a, b)| format!("first differing point: {a:?} vs {b:?}"))
                .unwrap_or_else(|| {
                    format!("point counts {} vs {}", p.points().len(), s.points().len())
                });
            format!("parallel and serial sweeps disagree: {first}")
        }
        (Err(a), Err(b)) => {
            if a == b {
                return None;
            }
            format!("sweep errors disagree: {a:?} vs {b:?}")
        }
        (Ok(_), Err(e)) => format!("parallel succeeded but serial failed: {e:?}"),
        (Err(e), Ok(_)) => format!("serial succeeded but parallel failed: {e:?}"),
    };
    Some(Divergence {
        pair: OraclePair::Sweep,
        detail,
    })
}

fn check_percentile(shape: &CaseShape) -> Option<Divergence> {
    let samples = shape.percentile.samples();
    let hist = Histogram::new();
    for &v in &samples {
        hist.record(v);
    }
    let snap = hist.snapshot();
    let mut sorted = samples;
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    for p in [0.50, 0.90, 0.99] {
        let rank = ((p * n).ceil() as u64).max(1) as usize;
        let exact = sorted[rank - 1];
        let got = snap.percentile(p);
        // Structural identity: the histogram must answer with the upper
        // bound of the bucket the exact percentile falls in (clamped to
        // the recorded max) — same rank convention, bucketed value.
        let want = bucket_upper_bound(bucket_index(exact)).min(snap.max);
        if got != want {
            return Some(Divergence {
                pair: OraclePair::Percentile,
                detail: format!(
                    "p{:02} bucket identity broken: histogram {got}, expected {want} \
                     (exact {exact}, bucket {})",
                    (p * 100.0) as u32,
                    bucket_index(exact)
                ),
            });
        }
        // Error bound: power-of-two buckets overestimate by at most 2×
        // and never underestimate.
        if got < exact || (exact > 0 && got > exact.saturating_mul(2)) {
            return Some(Divergence {
                pair: OraclePair::Percentile,
                detail: format!(
                    "p{:02} outside the 2x bound: histogram {got}, exact {exact}",
                    (p * 100.0) as u32
                ),
            });
        }
    }
    None
}

/// The integer activity counters every [`ActivityWindow`] must close
/// over: `(name, summed over windows, cumulative total)` triples.
fn closure_counters(
    windows: &[ActivityWindow],
    totals: &SimStats,
) -> [(&'static str, u64, u64); 7] {
    let sum = |field: fn(&ActivityWindow) -> u64| windows.iter().map(field).sum::<u64>();
    [
        ("user_instrs", sum(|w| w.user_instrs), totals.user_instrs()),
        ("instrs", sum(|w| w.instrs), totals.instrs()),
        ("llc_hits", sum(|w| w.llc_hits), totals.llc.hits),
        ("llc_misses", sum(|w| w.llc_misses), totals.llc.misses),
        (
            "xbar_transfers",
            sum(|w| w.xbar_transfers),
            totals.xbar_transfers,
        ),
        ("dram_reads", sum(|w| w.dram_reads), totals.dram.reads),
        ("dram_writes", sum(|w| w.dram_writes), totals.dram.writes),
    ]
}

/// The energy-probe oracle: a run with an [`EnergyProbe`] attached must
/// be bit-identical to a plain run, and the probe's windows must
/// partition the run — contiguous on the cycle axis from zero to the
/// final cycle, with every activity counter summing back to the
/// cumulative total exactly (integers, no tolerance).
fn check_energy_probe(shape: &CaseShape, mutate: bool) -> Option<Divergence> {
    let pair = OraclePair::EnergyProbe;
    let knobs = Knobs {
        mutate,
        ..Knobs::default()
    };
    // A case-derived width that leaves boundaries mid-run, so the check
    // exercises multi-window folding rather than one giant window.
    let window_cycles = (shape.measure_cycles / 7).max(1);
    let probe = EnergyProbe::with_window(window_cycles);
    let handle = probe.handle();
    let probed = run_shape_probed(shape, knobs, Some(Box::new(probe)));
    let plain = run_shape(shape, knobs);
    if probed != plain {
        return Some(Divergence {
            pair,
            detail: format!(
                "probed run not bit-identical: {}",
                describe(&probed, &plain)
            ),
        });
    }
    let windows = handle.finish();
    let totals = &probed.1;
    let mut cursor = 0u64;
    for (i, w) in windows.iter().enumerate() {
        if w.start_cycle != cursor {
            return Some(Divergence {
                pair,
                detail: format!(
                    "window {i} starts at cycle {} but the previous ended at {cursor}",
                    w.start_cycle
                ),
            });
        }
        cursor = w.end_cycle;
    }
    if cursor != totals.cycles {
        return Some(Divergence {
            pair,
            detail: format!(
                "windows cover cycles 0..{cursor} but the run spans 0..{}",
                totals.cycles
            ),
        });
    }
    for (name, windowed, cumulative) in closure_counters(&windows, totals) {
        if windowed != cumulative {
            return Some(Divergence {
                pair,
                detail: format!(
                    "activity closure broken: windows sum {name} to {windowed}, \
                     cumulative stats say {cumulative}"
                ),
            });
        }
    }
    None
}

/// Runs the shape on a [`ChipSim`] regardless of `use_chip` — the
/// parallel-chip pair is about the chip engine's epoch barrier, so even
/// single-cluster cases drive it (a one-cluster chip still exercises the
/// detach/replay machinery against the serial path).
fn run_chip_shape(shape: &CaseShape, k: Knobs) -> (SimStats, SimStats) {
    let mut sim = ChipSim::new_chip(shape.chip_config(), |cl, c| shape.stream(cl, c));
    sim.set_cycle_skip(k.cycle_skip);
    sim.set_threads(k.threads);
    sim.set_reference_dram_scheduler(k.reference_sched);
    sim.set_dram_scheduler_mutation(k.mutate);
    drive(&mut sim, shape)
}

/// The parallel-chip oracle: the epoch-barrier threaded chip engine must
/// be bit-identical to the serial interleaving — with the cycle-skip
/// fast path on *and* off, since the worker lanes run skip logic against
/// a detached DRAM and both variants must replay identically.
fn check_parallel_chip(shape: &CaseShape, mutate: bool) -> Option<Divergence> {
    for cycle_skip in [true, false] {
        let knobs = Knobs {
            cycle_skip,
            mutate,
            ..Knobs::default()
        };
        let parallel = run_chip_shape(
            shape,
            Knobs {
                threads: 3,
                ..knobs
            },
        );
        let serial = run_chip_shape(shape, knobs);
        if parallel != serial {
            return Some(Divergence {
                pair: OraclePair::ParallelChip,
                detail: format!(
                    "threaded chip (skip={cycle_skip}) not bit-identical: {}",
                    describe(&parallel, &serial)
                ),
            });
        }
    }
    None
}

/// Checks one oracle pair on one case. `mutate` injects the deliberate
/// scheduler fault (see `DramSystem::set_scheduler_mutation`) into every
/// *indexed*-scheduler run: only the [`OraclePair::DramSched`] pair
/// compares indexed against reference, so only it should trip — the
/// other simulator pairs apply the fault to both sides and must stay
/// identical, keeping mutation detection cleanly attributable.
pub fn check(pair: OraclePair, shape: &CaseShape, mutate: bool) -> Option<Divergence> {
    match pair {
        OraclePair::CycleSkip => check_sim_pair(
            pair,
            shape,
            Knobs {
                cycle_skip: true,
                mutate,
                ..Knobs::default()
            },
            Knobs {
                cycle_skip: false,
                mutate,
                ..Knobs::default()
            },
        ),
        OraclePair::DramSched => check_sim_pair(
            pair,
            shape,
            Knobs {
                mutate,
                ..Knobs::default()
            },
            Knobs {
                reference_sched: true,
                ..Knobs::default()
            },
        ),
        OraclePair::Telemetry => check_sim_pair(
            pair,
            shape,
            Knobs {
                probed: true,
                mutate,
                ..Knobs::default()
            },
            Knobs {
                mutate,
                ..Knobs::default()
            },
        ),
        OraclePair::Sweep => check_sweep(shape),
        OraclePair::Percentile => check_percentile(shape),
        OraclePair::EnergyProbe => check_energy_probe(shape, mutate),
        OraclePair::ParallelChip => check_parallel_chip(shape, mutate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_names_round_trip() {
        for pair in OraclePair::ALL {
            assert_eq!(OraclePair::parse(pair.name()), Some(pair));
        }
        assert_eq!(OraclePair::parse("nonsense"), None);
    }

    #[test]
    fn a_small_case_passes_every_pair() {
        let shape = CaseShape::generate(0xACCE55, 0);
        for pair in OraclePair::ALL {
            assert!(
                check(pair, &shape, false).is_none(),
                "pair {} diverged on a clean tree",
                pair.name()
            );
        }
    }

    #[test]
    fn describe_names_the_differing_counter() {
        let shape = CaseShape::generate(0xACCE55, 1);
        let a = run_shape(&shape, Knobs::default());
        let mut b = a.clone();
        b.0.xbar_transfers += 1;
        let msg = describe(&a, &b);
        assert!(msg.contains("xbar_transfers"), "{msg}");
        assert!(msg.contains("window"), "{msg}");
    }
}
