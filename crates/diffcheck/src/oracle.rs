//! The five fast/reference oracle pairs.
//!
//! Each pair runs the same [`CaseShape`] through an optimised path and a
//! simple reference path and demands identical results — bit-identical
//! [`SimStats`] for the simulator pairs, point-identical sweeps, and the
//! structural bucket identity (plus the 2× error bound) for histogram
//! percentiles. Any mismatch comes back as a [`Divergence`] whose detail
//! names the first differing counters.

use crate::case::CaseShape;
use ntc_core::{FrequencySweep, ServerConfig, TableMeasurer};
use ntc_sim::{ChipSim, ClusterSim, InstructionStream, SimStats, TimeSeriesProbe};
use ntc_telemetry::metrics::{bucket_index, bucket_upper_bound};
use ntc_telemetry::Histogram;
use serde::{Deserialize, Serialize};

/// One fast/reference implementation pair under differential test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OraclePair {
    /// Cycle-skip fast path vs the naive tick-every-cycle loop.
    CycleSkip,
    /// Indexed FR-FCFS DRAM scheduler vs the scan-everything reference.
    DramSched,
    /// Probed/traced simulation vs a plain run (telemetry must be inert).
    Telemetry,
    /// Parallel frequency sweep vs the serial baseline.
    Sweep,
    /// Histogram p50/p90/p99 vs exact sorted percentiles.
    Percentile,
}

impl OraclePair {
    /// Every pair, in round-robin order.
    pub const ALL: [OraclePair; 5] = [
        OraclePair::CycleSkip,
        OraclePair::DramSched,
        OraclePair::Telemetry,
        OraclePair::Sweep,
        OraclePair::Percentile,
    ];

    /// The CLI name (`--pair` value).
    pub fn name(self) -> &'static str {
        match self {
            OraclePair::CycleSkip => "cycle-skip",
            OraclePair::DramSched => "dram-sched",
            OraclePair::Telemetry => "telemetry",
            OraclePair::Sweep => "sweep",
            OraclePair::Percentile => "percentile",
        }
    }

    /// Parses a CLI name back to a pair.
    pub fn parse(s: &str) -> Option<OraclePair> {
        OraclePair::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// A detected fast/reference mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// The pair that disagreed.
    pub pair: OraclePair,
    /// Human-readable description of the first difference.
    pub detail: String,
}

/// Which switches a single simulator run flips.
#[derive(Clone, Copy)]
struct Knobs {
    cycle_skip: bool,
    reference_sched: bool,
    mutate: bool,
    probed: bool,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            cycle_skip: true,
            reference_sched: false,
            mutate: false,
            probed: false,
        }
    }
}

fn drive<S>(sim: &mut S, shape: &CaseShape) -> (SimStats, SimStats)
where
    S: SimDriver,
{
    if shape.warm_cycles > 0 {
        sim.warm(shape.warm_cycles);
    }
    let window = sim.measure(shape.measure_cycles);
    let total = sim.totals();
    (window, total)
}

/// The tiny common surface of [`ClusterSim`] and [`ChipSim`] the harness
/// needs, so one `drive` loop serves both engines.
trait SimDriver {
    fn warm(&mut self, cycles: u64);
    fn measure(&mut self, cycles: u64) -> SimStats;
    fn totals(&self) -> SimStats;
}

impl<S: InstructionStream> SimDriver for ClusterSim<S> {
    fn warm(&mut self, cycles: u64) {
        self.warm_up(cycles);
    }
    fn measure(&mut self, cycles: u64) -> SimStats {
        self.run_measured(cycles)
    }
    fn totals(&self) -> SimStats {
        self.stats()
    }
}

impl<S: InstructionStream> SimDriver for ChipSim<S> {
    fn warm(&mut self, cycles: u64) {
        self.run(cycles);
    }
    fn measure(&mut self, cycles: u64) -> SimStats {
        self.run_measured(cycles)
    }
    fn totals(&self) -> SimStats {
        self.stats()
    }
}

/// Runs the shape once under the given knob settings.
fn run_shape(shape: &CaseShape, k: Knobs) -> (SimStats, SimStats) {
    if shape.use_chip {
        let mut sim = ChipSim::new_chip(shape.chip_config(), |cl, c| shape.stream(cl, c));
        sim.set_cycle_skip(k.cycle_skip);
        sim.set_reference_dram_scheduler(k.reference_sched);
        sim.set_dram_scheduler_mutation(k.mutate);
        if k.probed {
            sim.attach_probe(Box::new(TimeSeriesProbe::new()));
        }
        drive(&mut sim, shape)
    } else {
        let mut sim = ClusterSim::new(shape.config, |c| shape.stream(0, c));
        sim.set_cycle_skip(k.cycle_skip);
        sim.set_reference_dram_scheduler(k.reference_sched);
        sim.set_dram_scheduler_mutation(k.mutate);
        if k.probed {
            sim.attach_probe(Box::new(TimeSeriesProbe::new()));
        }
        drive(&mut sim, shape)
    }
}

/// Describes the first difference between two `(window, final)` stat
/// pairs — enough to see *which* counter family diverged without dumping
/// two full structs.
fn describe(a: &(SimStats, SimStats), b: &(SimStats, SimStats)) -> String {
    for (scope, x, y) in [("window", &a.0, &b.0), ("final", &a.1, &b.1)] {
        if x == y {
            continue;
        }
        let mut parts = Vec::new();
        if x.cycles != y.cycles {
            parts.push(format!("cycles {} vs {}", x.cycles, y.cycles));
        }
        if x.wall_ps != y.wall_ps {
            parts.push(format!("wall_ps {} vs {}", x.wall_ps, y.wall_ps));
        }
        if x.user_instrs() != y.user_instrs() {
            parts.push(format!(
                "user_instrs {} vs {}",
                x.user_instrs(),
                y.user_instrs()
            ));
        }
        if x.xbar_transfers != y.xbar_transfers {
            parts.push(format!(
                "xbar_transfers {} vs {}",
                x.xbar_transfers, y.xbar_transfers
            ));
        }
        if x.dram_queue_high_water != y.dram_queue_high_water {
            parts.push(format!(
                "dram_queue_high_water {} vs {}",
                x.dram_queue_high_water, y.dram_queue_high_water
            ));
        }
        if x.llc != y.llc {
            parts.push(format!("llc {:?} vs {:?}", x.llc, y.llc));
        }
        if x.dram != y.dram {
            parts.push(format!("dram {:?} vs {:?}", x.dram, y.dram));
        }
        if x.cores != y.cores {
            parts.push("per-core counters differ".to_string());
        }
        return format!("{scope} stats diverge: {}", parts.join("; "));
    }
    "stats diverge".to_string()
}

fn check_sim_pair(
    pair: OraclePair,
    shape: &CaseShape,
    fast: Knobs,
    reference: Knobs,
) -> Option<Divergence> {
    let a = run_shape(shape, fast);
    let b = run_shape(shape, reference);
    (a != b).then(|| Divergence {
        pair,
        detail: describe(&a, &b),
    })
}

fn check_sweep(shape: &CaseShape) -> Option<Divergence> {
    let spec = &shape.sweep;
    let server = ServerConfig::paper().build().expect("paper server model");
    let measurer = TableMeasurer::synthetic(spec.uipc_low, spec.uipc_high);
    let sweep = FrequencySweep::over(spec.ladder.clone());
    let parallel = sweep.run(&server, &measurer);
    let serial = sweep.run_serial(&server, &measurer);
    let detail = match (parallel, serial) {
        (Ok(p), Ok(s)) => {
            if p.points() == s.points() {
                return None;
            }
            let first = p
                .points()
                .iter()
                .zip(s.points())
                .find(|(a, b)| a != b)
                .map(|(a, b)| format!("first differing point: {a:?} vs {b:?}"))
                .unwrap_or_else(|| {
                    format!("point counts {} vs {}", p.points().len(), s.points().len())
                });
            format!("parallel and serial sweeps disagree: {first}")
        }
        (Err(a), Err(b)) => {
            if a == b {
                return None;
            }
            format!("sweep errors disagree: {a:?} vs {b:?}")
        }
        (Ok(_), Err(e)) => format!("parallel succeeded but serial failed: {e:?}"),
        (Err(e), Ok(_)) => format!("serial succeeded but parallel failed: {e:?}"),
    };
    Some(Divergence {
        pair: OraclePair::Sweep,
        detail,
    })
}

fn check_percentile(shape: &CaseShape) -> Option<Divergence> {
    let samples = shape.percentile.samples();
    let hist = Histogram::new();
    for &v in &samples {
        hist.record(v);
    }
    let snap = hist.snapshot();
    let mut sorted = samples;
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    for p in [0.50, 0.90, 0.99] {
        let rank = ((p * n).ceil() as u64).max(1) as usize;
        let exact = sorted[rank - 1];
        let got = snap.percentile(p);
        // Structural identity: the histogram must answer with the upper
        // bound of the bucket the exact percentile falls in (clamped to
        // the recorded max) — same rank convention, bucketed value.
        let want = bucket_upper_bound(bucket_index(exact)).min(snap.max);
        if got != want {
            return Some(Divergence {
                pair: OraclePair::Percentile,
                detail: format!(
                    "p{:02} bucket identity broken: histogram {got}, expected {want} \
                     (exact {exact}, bucket {})",
                    (p * 100.0) as u32,
                    bucket_index(exact)
                ),
            });
        }
        // Error bound: power-of-two buckets overestimate by at most 2×
        // and never underestimate.
        if got < exact || (exact > 0 && got > exact.saturating_mul(2)) {
            return Some(Divergence {
                pair: OraclePair::Percentile,
                detail: format!(
                    "p{:02} outside the 2x bound: histogram {got}, exact {exact}",
                    (p * 100.0) as u32
                ),
            });
        }
    }
    None
}

/// Checks one oracle pair on one case. `mutate` injects the deliberate
/// scheduler fault (see `DramSystem::set_scheduler_mutation`) into every
/// *indexed*-scheduler run: only the [`OraclePair::DramSched`] pair
/// compares indexed against reference, so only it should trip — the
/// other simulator pairs apply the fault to both sides and must stay
/// identical, keeping mutation detection cleanly attributable.
pub fn check(pair: OraclePair, shape: &CaseShape, mutate: bool) -> Option<Divergence> {
    match pair {
        OraclePair::CycleSkip => check_sim_pair(
            pair,
            shape,
            Knobs {
                cycle_skip: true,
                mutate,
                ..Knobs::default()
            },
            Knobs {
                cycle_skip: false,
                mutate,
                ..Knobs::default()
            },
        ),
        OraclePair::DramSched => check_sim_pair(
            pair,
            shape,
            Knobs {
                mutate,
                ..Knobs::default()
            },
            Knobs {
                reference_sched: true,
                ..Knobs::default()
            },
        ),
        OraclePair::Telemetry => check_sim_pair(
            pair,
            shape,
            Knobs {
                probed: true,
                mutate,
                ..Knobs::default()
            },
            Knobs {
                mutate,
                ..Knobs::default()
            },
        ),
        OraclePair::Sweep => check_sweep(shape),
        OraclePair::Percentile => check_percentile(shape),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_names_round_trip() {
        for pair in OraclePair::ALL {
            assert_eq!(OraclePair::parse(pair.name()), Some(pair));
        }
        assert_eq!(OraclePair::parse("nonsense"), None);
    }

    #[test]
    fn a_small_case_passes_every_pair() {
        let shape = CaseShape::generate(0xACCE55, 0);
        for pair in OraclePair::ALL {
            assert!(
                check(pair, &shape, false).is_none(),
                "pair {} diverged on a clean tree",
                pair.name()
            );
        }
    }

    #[test]
    fn describe_names_the_differing_counter() {
        let shape = CaseShape::generate(0xACCE55, 1);
        let a = run_shape(&shape, Knobs::default());
        let mut b = a.clone();
        b.0.xbar_transfers += 1;
        let msg = describe(&a, &b);
        assert!(msg.contains("xbar_transfers"), "{msg}");
        assert!(msg.contains("window"), "{msg}");
    }
}
