//! End-to-end harness checks: a clean tree must be divergence-free, and
//! a deliberately injected scheduler bug must be caught *and* shrunk to
//! a tiny repro (the mutation check — if the harness ever stops seeing
//! the planted bug, the harness itself has regressed).

use ntc_diffcheck::{run, DiffcheckOptions, OraclePair};

#[test]
fn clean_tree_is_divergence_free_across_all_pairs() {
    let opts = DiffcheckOptions {
        seed: 0xD1FF_C0DE,
        max_cases: Some(21),
        shrink: false,
        ..DiffcheckOptions::default()
    };
    let report = run(&opts);
    assert_eq!(report.cases, 21);
    assert!(
        report.clean(),
        "fast/reference divergences on a clean tree: {:#?}",
        report
            .divergences
            .iter()
            .map(|d| (d.pair, &d.detail))
            .collect::<Vec<_>>()
    );
    // Round-robin routing: every one of the seven pairs saw cases.
    assert_eq!(report.tallies.len(), 7);
    assert!(report.tallies.iter().all(|t| t.cases == 3));
}

#[test]
fn injected_scheduler_bug_is_caught_and_shrunk_small() {
    // Seed picked so the first diverging case has a single-cluster
    // minimal repro: the planted row-hit fault needs concurrent requests
    // to surface, and some cases only exhibit it with several clusters'
    // worth of traffic — those shrink to small multi-cluster repros.
    let opts = DiffcheckOptions {
        seed: 0xBAD_5EF0,
        max_cases: Some(40),
        pairs: vec![OraclePair::DramSched],
        mutate: true,
        shrink: true,
        max_divergences: 1,
        ..DiffcheckOptions::default()
    };
    let report = run(&opts);
    assert!(
        !report.clean(),
        "the planted FR-FCFS mutation went undetected across {} cases",
        report.cases
    );
    let d = &report.divergences[0];
    assert_eq!(d.pair, OraclePair::DramSched);
    assert!(!d.detail.is_empty());
    assert!(d.repro_command().contains("--pair dram-sched"));
    // Acceptance bar: the shrinker reduces the planted bug to a repro of
    // at most 2 cores over at most 2 DRAM banks.
    let shrunk = &d.shrunk;
    let banks = shrunk.config.dram.channels * shrunk.config.dram.banks_per_channel();
    assert!(
        shrunk.config.cores <= 2,
        "shrunk repro still uses {} cores",
        shrunk.config.cores
    );
    assert!(banks <= 2, "shrunk repro still uses {banks} banks");
    assert_eq!(
        shrunk.clusters, 1,
        "shrunk repro still uses multiple clusters"
    );
}

#[test]
fn mutation_leaves_the_other_sim_pairs_identical() {
    // The fault is applied to *both* sides of the cycle-skip and
    // telemetry pairs, so divergence stays attributable to dram-sched.
    let opts = DiffcheckOptions {
        seed: 0xBAD_5EED,
        max_cases: Some(10),
        pairs: vec![OraclePair::CycleSkip, OraclePair::Telemetry],
        mutate: true,
        shrink: false,
        ..DiffcheckOptions::default()
    };
    let report = run(&opts);
    assert!(
        report.clean(),
        "mutation leaked into a pair that should self-cancel: {:#?}",
        report
            .divergences
            .iter()
            .map(|d| (d.pair, &d.detail))
            .collect::<Vec<_>>()
    );
}
