//! Bucket-edge coverage for the power-of-two histogram.
//!
//! The log₂ bucketing promises: bucket `i ≥ 1` holds `[2^(i-1), 2^i-1]`,
//! bucket 0 holds exactly zero, and any percentile overestimates the
//! exact order statistic by at most 2× (never underestimates). These
//! tests pin the boundaries — both sides of every power of two — and the
//! p99-within-one-bucket guarantee the diffcheck percentile oracle
//! fuzzes at scale.

use ntc_telemetry::metrics::{bucket_index, bucket_upper_bound, BUCKETS};
use ntc_telemetry::Histogram;

/// Exact percentile with the histogram's own rank convention.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

#[test]
fn bucket_index_splits_exactly_at_powers_of_two() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    for k in 1..63u32 {
        let edge = 1u64 << k;
        // 2^k opens bucket k+1; 2^k - 1 closes bucket k.
        assert_eq!(bucket_index(edge), (k + 1) as usize, "2^{k}");
        assert_eq!(bucket_index(edge - 1), k as usize, "2^{k} - 1");
    }
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
}

#[test]
fn bucket_bounds_are_inclusive_upper_edges() {
    assert_eq!(bucket_upper_bound(0), 0);
    for i in 1..64usize {
        let hi = bucket_upper_bound(i);
        assert_eq!(hi, (1u64 << i) - 1);
        // The bound belongs to its own bucket; one more spills over.
        assert_eq!(bucket_index(hi), i);
        assert_eq!(bucket_index(hi + 1), i + 1);
    }
    assert_eq!(bucket_upper_bound(64), u64::MAX);
}

#[test]
fn constant_population_on_a_bucket_edge_reports_itself() {
    // 2^k - 1 is its bucket's upper bound, so clamping to max makes the
    // percentile exact for a constant population sitting on the edge.
    for k in [1u32, 10, 32, 63] {
        let v = (1u64 << k) - 1;
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(v);
        }
        let snap = h.snapshot();
        for p in [0.5, 0.9, 0.99] {
            assert_eq!(snap.percentile(p), v, "constant 2^{k} - 1");
        }
    }
}

#[test]
fn constant_power_of_two_population_clamps_to_max() {
    // 2^k opens bucket k+1, whose upper bound is 2^(k+1) - 1; the clamp
    // to the observed max pulls the answer back to the exact value.
    for k in [1u32, 16, 40] {
        let v = 1u64 << k;
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(v);
        }
        assert_eq!(h.snapshot().percentile(0.99), v, "constant 2^{k}");
    }
}

#[test]
fn straddling_an_edge_resolves_each_side_to_its_own_bucket() {
    // Half the samples just below 2^10, half at 2^10: p50 must answer
    // from bucket 10 and p99 from bucket 11.
    let h = Histogram::new();
    for _ in 0..50 {
        h.record(1023);
    }
    for _ in 0..50 {
        h.record(1024);
    }
    let snap = h.snapshot();
    assert_eq!(snap.percentile(0.50), 1023);
    assert_eq!(snap.percentile(0.99), 1024); // bucket 11's bound, clamped to max
}

#[test]
fn percentiles_stay_within_one_bucket_of_exact() {
    // A deterministic heavy-tailed population (xorshift, no external
    // RNG): every quantile must land in the same bucket as the exact
    // order statistic and within its 2x width, never below it.
    let mut x = 0x9E37_79B9u64 | 1;
    let mut samples = Vec::with_capacity(10_000);
    let h = Histogram::new();
    for _ in 0..10_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let v = x >> (x % 48); // spread across many octaves
        samples.push(v);
        h.record(v);
    }
    samples.sort_unstable();
    let snap = h.snapshot();
    for p in [0.5, 0.9, 0.99] {
        let exact = exact_percentile(&samples, p);
        let got = snap.percentile(p);
        assert!(got >= exact, "p{p}: {got} underestimates exact {exact}");
        assert!(
            exact == 0 || got <= exact.saturating_mul(2),
            "p{p}: {got} beyond 2x of exact {exact}"
        );
        assert!(
            bucket_index(got).abs_diff(bucket_index(exact)) <= 1,
            "p{p}: answer bucket {} vs exact bucket {}",
            bucket_index(got),
            bucket_index(exact)
        );
    }
}

#[test]
fn zero_heavy_population_keeps_bucket_zero_exact() {
    let h = Histogram::new();
    for _ in 0..99 {
        h.record(0);
    }
    h.record(7);
    let snap = h.snapshot();
    assert_eq!(snap.percentile(0.5), 0);
    assert_eq!(snap.percentile(0.99), 0);
    assert_eq!(snap.percentile(1.0), 7);
}
