//! Typed metrics with a process-global registry.
//!
//! Primitives ([`Counter`], [`Gauge`], [`Histogram`]) record through
//! `&self` with relaxed atomics, so instrumented code never threads a
//! handle around. The lazy wrappers ([`LazyCounter`], [`LazyHistogram`])
//! are `static`-friendly: construction is `const`, the metric registers
//! itself in [`Registry::global`] on first record, and every record is
//! gated on [`crate::metrics_enabled`] — so without the `enabled`
//! feature the whole call compiles away.
//!
//! Snapshots export two ways: [`jsonl`] (one self-contained JSON object
//! per line, machine-readable) and [`summary_table`] (human-readable,
//! printed at the end of a `--metrics` bench run).

use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock, PoisonError};

/// Monotonic event count. Relaxed-atomic recording through `&self`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (usable in `static` initializers).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` to the count.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed point-in-time level (queue depth, occupancy, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge (usable in `static` initializers).
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Set the level.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adjust the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero, one per power-of-two
/// magnitude of a `u64` (see [`bucket_index`]).
pub const BUCKETS: usize = 65;

/// Lock-free log₂-bucketed histogram of `u64` samples.
///
/// Bucket `i` (for `i ≥ 1`) holds values in `[2^(i-1), 2^i - 1]`;
/// bucket 0 holds exactly zero. That caps quantile error at 2× — plenty
/// for latency/occupancy distributions — while keeping recording to two
/// relaxed RMWs plus min/max maintenance, with no locks and no
/// allocation.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// The bucket a value lands in: `0 → 0`, otherwise `64 - leading_zeros`
/// (so `1 → 1`, `2..=3 → 2`, `1024 → 11`, `u64::MAX → 64`).
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Largest value bucket `index` can hold (`u64::MAX` for the top one).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram. Not `const` (array of atomics), so lazy
    /// statics use [`LazyHistogram`].
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for reporting (individual loads are
    /// relaxed; concurrent recording may skew by a sample).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain-data copy of a [`Histogram`] at one point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow, like the atomic).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket counts, [`BUCKETS`] entries (see [`bucket_index`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-quantile (`p` in 0..=1), resolved to the upper bound of
    /// the first bucket whose cumulative count reaches it, clamped to
    /// the observed max. Exact to within the 2× bucket width.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// A `static`-friendly counter that self-registers on first use and
/// only records when [`crate::metrics_enabled`].
pub struct LazyCounter {
    name: &'static str,
    counter: Counter,
    registered: Once,
}

impl LazyCounter {
    /// A named counter; nothing happens until the first enabled record.
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            counter: Counter::new(),
            registered: Once::new(),
        }
    }

    /// Add `n` if metrics are enabled (registering on first use).
    /// Compiles away entirely without the `enabled` feature.
    pub fn add(&'static self, n: u64) {
        if crate::metrics_enabled() {
            self.registered
                .call_once(|| Registry::global().register_counter(self.name, &self.counter));
            self.counter.add(n);
        }
    }

    /// Add one if metrics are enabled.
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Current count (0 until something was recorded while enabled).
    pub fn get(&self) -> u64 {
        self.counter.get()
    }
}

/// A `static`-friendly histogram; see [`LazyCounter`].
pub struct LazyHistogram {
    name: &'static str,
    histogram: OnceLock<Histogram>,
    registered: Once,
}

impl LazyHistogram {
    /// A named histogram; allocated on the first enabled record.
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            histogram: OnceLock::new(),
            registered: Once::new(),
        }
    }

    /// Record a sample if metrics are enabled (registering on first
    /// use). Compiles away entirely without the `enabled` feature.
    pub fn record(&'static self, value: u64) {
        if crate::metrics_enabled() {
            let histogram = self.histogram.get_or_init(Histogram::new);
            self.registered
                .call_once(|| Registry::global().register_histogram(self.name, histogram));
            histogram.record(value);
        }
    }

    /// Snapshot (empty until something was recorded while enabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        match self.histogram.get() {
            Some(h) => h.snapshot(),
            None => Histogram::new().snapshot(),
        }
    }
}

enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// The process-global name → metric table behind snapshots and export.
///
/// Registration is explicit (or lazy via [`LazyCounter`] /
/// [`LazyHistogram`]); re-registering a name is ignored, so first
/// registration wins.
pub struct Registry {
    slots: Mutex<Vec<(&'static str, Slot)>>,
}

impl Registry {
    /// The process-global registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(|| Registry {
            slots: Mutex::new(Vec::new()),
        })
    }

    fn register(&self, name: &'static str, slot: Slot) {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if !slots.iter().any(|(n, _)| *n == name) {
            slots.push((name, slot));
        }
    }

    /// Register a counter under `name` (first registration wins).
    pub fn register_counter(&self, name: &'static str, counter: &'static Counter) {
        self.register(name, Slot::Counter(counter));
    }

    /// Register a gauge under `name` (first registration wins).
    pub fn register_gauge(&self, name: &'static str, gauge: &'static Gauge) {
        self.register(name, Slot::Gauge(gauge));
    }

    /// Register a histogram under `name` (first registration wins).
    pub fn register_histogram(&self, name: &'static str, histogram: &'static Histogram) {
        self.register(name, Slot::Histogram(histogram));
    }

    /// Snapshot every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<MetricSnapshot> = slots
            .iter()
            .map(|(name, slot)| MetricSnapshot {
                name,
                value: match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(b.name));
        out
    }
}

/// One registered metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// A named metric value captured by [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Captured value.
    pub value: MetricValue,
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl MetricSnapshot {
    /// This metric as one self-contained JSON object (no trailing
    /// newline). Histograms report count/sum/min/max plus p50/p90/p99.
    pub fn jsonl_line(&self) -> String {
        let name = escape_json(self.name);
        match &self.value {
            MetricValue::Counter(v) => {
                format!("{{\"name\":{name},\"kind\":\"counter\",\"value\":{v}}}")
            }
            MetricValue::Gauge(v) => {
                format!("{{\"name\":{name},\"kind\":\"gauge\",\"value\":{v}}}")
            }
            MetricValue::Histogram(h) => format!(
                "{{\"name\":{name},\"kind\":\"histogram\",\"count\":{},\"sum\":{},\
                 \"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
            ),
        }
    }
}

/// All snapshots as JSONL (one metric per line, trailing newline).
pub fn jsonl(snapshots: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for s in snapshots {
        out.push_str(&s.jsonl_line());
        out.push('\n');
    }
    out
}

/// A human-readable summary table of the snapshots (for end-of-run
/// reporting on stdout).
pub fn summary_table(snapshots: &[MetricSnapshot]) -> String {
    let width = snapshots
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(0)
        .max("metric".len());
    let mut out = format!("  {:width$}  value\n", "metric");
    for s in snapshots {
        let value = match &s.value {
            MetricValue::Counter(v) => format!("{v}"),
            MetricValue::Gauge(v) => format!("{v}"),
            MetricValue::Histogram(h) => format!(
                "n={} mean={:.1} min={} p50={} p90={} p99={} max={}",
                h.count,
                h.mean(),
                h.min,
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.max,
            ),
        };
        out.push_str(&format!("  {:width$}  {value}\n", s.name));
    }
    out
}

/// Snapshot the global registry and write it as JSONL to `path`
/// (creating parent directories). Returns the number of metrics
/// written.
pub fn write_jsonl(path: impl AsRef<Path>) -> std::io::Result<usize> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let snapshots = Registry::global().snapshot();
    std::fs::write(path, jsonl(&snapshots))?;
    Ok(snapshots.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's upper bound maps back into that bucket.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let h = Histogram::new();
        for v in [0, 1, 1, 5, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_001_007);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the two ones
                                     // p100 is clamped to the observed max, not the bucket bound.
        assert_eq!(s.percentile(1.0), 1_000_000);
        // p50 resolves to the bucket holding the 3rd sample (value 1).
        assert_eq!(s.percentile(0.5), 1);
        // Quantile error is bounded by the 2x bucket width.
        let p99 = s.percentile(0.99) as f64;
        assert!((1_000_000.0..=2_097_151.0).contains(&p99), "p99={p99}");
    }

    #[test]
    fn empty_histogram_is_sane() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.min, s.max), (0, 0, 0));
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let h = Histogram::new();
        h.record(3);
        h.record(300);
        let snapshots = vec![
            MetricSnapshot {
                name: "test.counter",
                value: MetricValue::Counter(7),
            },
            MetricSnapshot {
                name: "test.gauge",
                value: MetricValue::Gauge(-2),
            },
            MetricSnapshot {
                name: "test.histogram",
                value: MetricValue::Histogram(h.snapshot()),
            },
        ];
        let text = jsonl(&snapshots);
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            let value: serde_json::Value =
                serde_json::from_str(line).expect("each JSONL line parses as JSON");
            drop(value);
        }
        assert!(text.contains("\"kind\":\"histogram\""));
        let table = summary_table(&snapshots);
        assert!(table.contains("test.counter"));
        assert!(table.contains("p99"));
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("plain.name"), "\"plain.name\"");
        assert_eq!(escape_json("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    // The global registry is shared across parallel tests, so this test
    // owns its metric names and never asserts on the full snapshot.
    #[test]
    fn registry_snapshot_is_sorted_and_dedups() {
        static C1: Counter = Counter::new();
        static C2: Counter = Counter::new();
        let r = Registry::global();
        r.register_counter("test.registry.b", &C2);
        r.register_counter("test.registry.a", &C1);
        r.register_counter("test.registry.a", &C2); // ignored: first wins
        C1.add(5);
        let snaps = r.snapshot();
        let names: Vec<&str> = snaps.iter().map(|s| s.name).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot must be name-sorted");
        assert_eq!(
            names.iter().filter(|n| **n == "test.registry.a").count(),
            1,
            "duplicate registration must be ignored"
        );
        let a = snaps.iter().find(|s| s.name == "test.registry.a").unwrap();
        assert_eq!(a.value, MetricValue::Counter(5));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn lazy_metrics_gate_on_runtime_switch() {
        static HITS: LazyCounter = LazyCounter::new("test.lazy.hits");
        static LAT: LazyHistogram = LazyHistogram::new("test.lazy.latency");
        let _guard = crate::test_switch_lock().lock().unwrap();
        crate::set_metrics(false);
        HITS.inc();
        LAT.record(9);
        assert_eq!(HITS.get(), 0, "disabled recording must be dropped");
        assert_eq!(LAT.snapshot().count, 0);
        crate::set_metrics(true);
        HITS.add(3);
        LAT.record(9);
        assert_eq!(HITS.get(), 3);
        assert_eq!(LAT.snapshot().count, 1);
        let names: Vec<&str> = Registry::global()
            .snapshot()
            .iter()
            .map(|s| s.name)
            .collect();
        assert!(names.contains(&"test.lazy.hits"), "lazy self-registration");
        assert!(names.contains(&"test.lazy.latency"));
        crate::set_metrics(false);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn lazy_metrics_compile_away_when_disabled() {
        static HITS: LazyCounter = LazyCounter::new("test.lazy.off");
        HITS.inc();
        HITS.add(10);
        assert_eq!(HITS.get(), 0);
    }
}
