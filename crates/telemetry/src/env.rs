//! One consistent parser for the `NTC_*` environment variables.
//!
//! Every boolean switch (`NTC_TRACE`, `NTC_METRICS`, `NTC_CACHE`) and
//! enum-valued knob (`NTC_FIDELITY`) in the workspace routes through
//! here, so they all accept the same spellings and an invalid value
//! produces exactly one warning per variable per process instead of
//! silently doing nothing (or warning on every read).

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock, PoisonError};

fn warned() -> &'static Mutex<BTreeSet<String>> {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Print `warning: {message()}` to stderr at most once per `key` for the
/// lifetime of the process. The message closure is only evaluated the
/// first time, so callers can format freely.
pub fn warn_once(key: &str, message: impl FnOnce() -> String) {
    let mut seen = warned().lock().unwrap_or_else(PoisonError::into_inner);
    if seen.insert(key.to_owned()) {
        eprintln!("warning: {}", message());
    }
}

/// Parse a boolean flag value: `1`/`true`/`on`/`yes` are true,
/// `0`/`false`/`off`/`no` and the empty string are false (case- and
/// whitespace-insensitive), anything else is `None`.
pub fn flag_value(value: &str) -> Option<bool> {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "" | "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

/// Read the boolean environment variable `name`. Unset means `false`;
/// an unrecognized value warns once and also means `false`.
pub fn flag(name: &str) -> bool {
    match std::env::var(name) {
        Err(_) => false,
        Ok(value) => flag_value(&value).unwrap_or_else(|| {
            warn_once(name, || {
                format!(
                    "unrecognized {name} value {value:?} \
                     (expected 1/0, true/false, on/off, or yes/no); treating it as off"
                )
            });
            false
        }),
    }
}

/// Read the environment variable `name` through `parse`. Unset returns
/// `default`; a parse error warns once (with the error text) and returns
/// `default`.
pub fn parse_or<T>(name: &str, default: T, parse: impl FnOnce(&str) -> Result<T, String>) -> T {
    match std::env::var(name) {
        Err(_) => default,
        Ok(value) => parse(&value).unwrap_or_else(|err| {
            warn_once(name, || err);
            default
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    // Each test uses its own variable names: the process environment and
    // the warn-once set are global, and tests run in parallel.

    #[test]
    fn flag_value_spellings() {
        for v in ["1", "true", "TRUE", " on ", "Yes"] {
            assert_eq!(flag_value(v), Some(true), "{v:?}");
        }
        for v in ["0", "false", "Off", " no", ""] {
            assert_eq!(flag_value(v), Some(false), "{v:?}");
        }
        for v in ["2", "enabled", "y", "tru"] {
            assert_eq!(flag_value(v), None, "{v:?}");
        }
    }

    #[test]
    fn flag_reads_environment() {
        assert!(!flag("NTC_TEST_FLAG_UNSET"));
        std::env::set_var("NTC_TEST_FLAG_ON", "yes");
        assert!(flag("NTC_TEST_FLAG_ON"));
        std::env::set_var("NTC_TEST_FLAG_OFF", "0");
        assert!(!flag("NTC_TEST_FLAG_OFF"));
        std::env::set_var("NTC_TEST_FLAG_BAD", "maybe");
        assert!(!flag("NTC_TEST_FLAG_BAD"));
        for name in ["NTC_TEST_FLAG_ON", "NTC_TEST_FLAG_OFF", "NTC_TEST_FLAG_BAD"] {
            std::env::remove_var(name);
        }
    }

    #[test]
    fn warn_once_evaluates_message_once() {
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            warn_once("NTC_TEST_WARN_ONCE", || {
                calls.fetch_add(1, Ordering::Relaxed);
                "test warning (expected once in test output)".to_owned()
            });
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parse_or_defaults_on_unset_and_invalid() {
        let parse = |v: &str| {
            v.parse::<u32>()
                .map_err(|e| format!("bad value {v:?}: {e}"))
        };
        assert_eq!(parse_or("NTC_TEST_PARSE_UNSET", 7, parse), 7);
        std::env::set_var("NTC_TEST_PARSE_OK", "42");
        assert_eq!(parse_or("NTC_TEST_PARSE_OK", 7, parse), 42);
        std::env::set_var("NTC_TEST_PARSE_BAD", "forty-two");
        assert_eq!(parse_or("NTC_TEST_PARSE_BAD", 7, parse), 7);
        std::env::remove_var("NTC_TEST_PARSE_OK");
        std::env::remove_var("NTC_TEST_PARSE_BAD");
    }
}
