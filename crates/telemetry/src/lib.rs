//! Zero-cost observability for the near-threshold server study.
//!
//! Three pieces, all opt-in twice over (compile-time feature + runtime
//! switch):
//!
//! - [`metrics`] — a process-global registry of typed counters, gauges,
//!   and log₂-bucketed histograms. Recording is `&self` (relaxed
//!   atomics), registration is lazy and happens on first use, and
//!   snapshots serialize to JSONL (one metric per line) under
//!   `results/telemetry/` plus a human-readable summary table.
//! - [`trace`] — begin/end spans with thread ids, buffered per thread
//!   and exported as Chrome `trace_event` JSON that loads directly in
//!   `about:tracing` or [Perfetto](https://ui.perfetto.dev).
//! - [`env`] — one consistent parser for the `NTC_*` environment
//!   variables (`NTC_TRACE`, `NTC_METRICS`, `NTC_CACHE`,
//!   `NTC_FIDELITY`) that warns once per variable on invalid values.
//!
//! # The zero-cost contract
//!
//! Without the `enabled` cargo feature, [`tracing_enabled`] and
//! [`metrics_enabled`] are `#[inline(always)]` constant `false`, so every
//! instrumentation site in the workspace folds away at compile time —
//! the hot loops carry no atomics, no branches, no allocation. With the
//! feature compiled in, each switch is one relaxed atomic load; the
//! default is still *off* unless `NTC_TRACE=1` / `NTC_METRICS=1` is set
//! in the environment or [`set_tracing`] / [`set_metrics`] is called
//! (which is what the `ntc-bench` `--trace` / `--metrics` flags do).

pub mod env;
pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, LazyCounter, LazyHistogram, MetricSnapshot, MetricValue, Registry,
};
pub use trace::{
    counter_args, push_events, span, span_cat, span_with, ChromeTrace, Span, TraceEvent,
};

/// Whether the telemetry runtime was compiled in (`enabled` feature).
///
/// When this is `false`, [`set_tracing`] / [`set_metrics`] are inert —
/// callers that take `--trace`-style flags should warn the user.
pub const fn compiled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
mod switches {
    use std::sync::atomic::{AtomicU8, Ordering};

    // Tri-state so the environment is consulted exactly once, lazily:
    // an explicit set_*() before first use wins over the environment.
    const UNSET: u8 = 0;
    const OFF: u8 = 1;
    const ON: u8 = 2;

    static TRACING: AtomicU8 = AtomicU8::new(UNSET);
    static METRICS: AtomicU8 = AtomicU8::new(UNSET);

    fn resolve(switch: &AtomicU8, var: &str) -> bool {
        match switch.load(Ordering::Relaxed) {
            ON => true,
            OFF => false,
            _ => {
                let on = crate::env::flag(var);
                switch.store(if on { ON } else { OFF }, Ordering::Relaxed);
                on
            }
        }
    }

    /// Is span tracing on? One relaxed load on the steady state.
    #[inline]
    pub fn tracing_enabled() -> bool {
        resolve(&TRACING, "NTC_TRACE")
    }

    /// Is metrics recording on? One relaxed load on the steady state.
    #[inline]
    pub fn metrics_enabled() -> bool {
        resolve(&METRICS, "NTC_METRICS")
    }

    /// Force span tracing on/off, overriding `NTC_TRACE`.
    pub fn set_tracing(on: bool) {
        TRACING.store(if on { ON } else { OFF }, Ordering::Relaxed);
    }

    /// Force metrics recording on/off, overriding `NTC_METRICS`.
    pub fn set_metrics(on: bool) {
        METRICS.store(if on { ON } else { OFF }, Ordering::Relaxed);
    }
}

#[cfg(not(feature = "enabled"))]
mod switches {
    /// Span tracing is compiled out: constant `false`, folds away.
    #[inline(always)]
    pub fn tracing_enabled() -> bool {
        false
    }

    /// Metrics recording is compiled out: constant `false`, folds away.
    #[inline(always)]
    pub fn metrics_enabled() -> bool {
        false
    }

    /// No-op without the `enabled` feature (see [`crate::compiled`]).
    pub fn set_tracing(_on: bool) {}

    /// No-op without the `enabled` feature (see [`crate::compiled`]).
    pub fn set_metrics(_on: bool) {}
}

pub use switches::{metrics_enabled, set_metrics, set_tracing, tracing_enabled};

/// Tests that toggle the global switches serialize on this lock so they
/// don't observe each other's state (the test harness is parallel).
#[cfg(all(test, feature = "enabled"))]
pub(crate) fn test_switch_lock() -> &'static std::sync::Mutex<()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
}

#[cfg(test)]
mod tests {
    #[test]
    fn compiled_reflects_feature() {
        assert_eq!(super::compiled(), cfg!(feature = "enabled"));
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_constant_false() {
        super::set_tracing(true);
        super::set_metrics(true);
        assert!(!super::tracing_enabled());
        assert!(!super::metrics_enabled());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn setters_override_environment() {
        let _guard = super::test_switch_lock().lock().unwrap();
        super::set_tracing(true);
        assert!(super::tracing_enabled());
        super::set_tracing(false);
        assert!(!super::tracing_enabled());
        super::set_metrics(true);
        assert!(super::metrics_enabled());
        super::set_metrics(false);
        assert!(!super::metrics_enabled());
    }
}
