//! Span tracing with Chrome `trace_event` export.
//!
//! A [`Span`] is an RAII guard: creation stamps the start time, drop
//! records a complete ("X") event into a per-thread buffer. Buffers are
//! drained by [`take_events`] / [`write_chrome_trace`] into the Chrome
//! trace-event JSON format, which loads directly in `about:tracing` or
//! [Perfetto](https://ui.perfetto.dev) — each worker thread gets its own
//! track, so the parallel frequency ladder is visually inspectable.
//!
//! When tracing is off ([`crate::tracing_enabled`]), span construction
//! is a single branch (a constant one without the `enabled` feature) and
//! nothing is buffered or allocated.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cell::RefCell;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// One Chrome trace event. Field names match the trace-event JSON
/// schema: `ph` is the phase (`"X"` = complete span, `"C"` = counter),
/// `ts` and `dur` are microseconds, `pid`/`tid` select the track.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span name (e.g. `ladder 1200 MHz`).
    pub name: String,
    /// Category (e.g. `sweep`, `measure`, `sim`).
    pub cat: String,
    /// Event phase; spans record `"X"` (complete), counter rails `"C"`.
    pub ph: String,
    /// Start time in microseconds since the process trace epoch.
    pub ts: f64,
    /// Duration in microseconds.
    pub dur: f64,
    /// Process id.
    pub pid: u64,
    /// Thread track id (small integers assigned per thread).
    pub tid: u64,
    /// Event arguments; counter ("C") events carry their series values
    /// here (`{"series": value, ...}`). `None` for plain spans — and
    /// omitted from the JSON entirely (hand-written serde below), so
    /// span-only traces are byte-compatible with earlier exports.
    pub args: Option<serde_json::Value>,
}

impl TraceEvent {
    /// Builds a Chrome counter ("C") event: Perfetto renders one stacked
    /// area track per `(pid, name)` with a rail per key in `args`
    /// (assemble the value with [`counter_args`]).
    ///
    /// Counter timestamps need not be wall-clock — the energy plane
    /// stamps *simulated* time. Give such counters their own `pid` so
    /// their track does not interleave with wall-clock span tracks.
    pub fn counter(
        name: impl Into<String>,
        cat: impl Into<String>,
        ts_us: f64,
        pid: u64,
        args: serde_json::Value,
    ) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: cat.into(),
            ph: "C".to_owned(),
            ts: ts_us,
            dur: 0.0,
            pid,
            tid: 0,
            args: Some(args),
        }
    }
}

/// Builds a counter-event `args` object from `(rail, value)` pairs —
/// the vendored serde shim has no `json!` macro.
pub fn counter_args(pairs: &[(&str, f64)]) -> serde_json::Value {
    serde_json::Value::Map(
        pairs
            .iter()
            .map(|&(k, v)| (k.to_owned(), serde_json::Value::F64(v)))
            .collect(),
    )
}

// Hand-written (not derived) so a `None` args field vanishes from the
// JSON instead of serializing as `"args":null`.
impl Serialize for TraceEvent {
    fn to_content(&self) -> serde::Content {
        let mut fields = vec![
            ("name".to_owned(), self.name.to_content()),
            ("cat".to_owned(), self.cat.to_content()),
            ("ph".to_owned(), self.ph.to_content()),
            ("ts".to_owned(), self.ts.to_content()),
            ("dur".to_owned(), self.dur.to_content()),
            ("pid".to_owned(), self.pid.to_content()),
            ("tid".to_owned(), self.tid.to_content()),
        ];
        if let Some(args) = &self.args {
            fields.push(("args".to_owned(), args.to_content()));
        }
        serde::Content::Map(fields)
    }
}

impl Deserialize for TraceEvent {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let field = |key: &str| {
            content
                .get(key)
                .ok_or_else(|| serde::DeError::expected(key, "TraceEvent"))
        };
        Ok(TraceEvent {
            name: String::from_content(field("name")?)?,
            cat: String::from_content(field("cat")?)?,
            ph: String::from_content(field("ph")?)?,
            ts: f64::from_content(field("ts")?)?,
            dur: f64::from_content(field("dur")?)?,
            pid: u64::from_content(field("pid")?)?,
            tid: u64::from_content(field("tid")?)?,
            args: content.get("args").cloned(),
        })
    }
}

/// Top-level Chrome trace JSON document: `{"traceEvents": [...]}`.
///
/// The field is intentionally camelCase — that exact spelling is what
/// `about:tracing` / Perfetto require.
#[allow(non_snake_case)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeTrace {
    /// The events, in the order they were exported.
    pub traceEvents: Vec<TraceEvent>,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

type Buffer = Arc<Mutex<Vec<TraceEvent>>>;

fn sinks() -> &'static Mutex<Vec<Buffer>> {
    static SINKS: OnceLock<Mutex<Vec<Buffer>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // (tid, buffer), registered into `sinks()` on this thread's first event.
    static LOCAL: RefCell<Option<(u64, Buffer)>> = const { RefCell::new(None) };
}

// Runs `f` with this thread's `(tid, buffer)`, registering the buffer
// into `sinks()` on the thread's first event.
fn with_local_buffer(f: impl FnOnce(u64, &Buffer)) {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let (tid, buffer) = local.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let buffer: Buffer = Arc::new(Mutex::new(Vec::new()));
            sinks()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&buffer));
            (tid, buffer)
        });
        f(*tid, buffer);
    });
}

fn record(name: Cow<'static, str>, cat: &'static str, start_us: f64) {
    let end_us = now_us();
    with_local_buffer(|tid, buffer| {
        buffer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(TraceEvent {
                name: name.into_owned(),
                cat: cat.to_owned(),
                ph: "X".to_owned(),
                ts: start_us,
                dur: (end_us - start_us).max(0.0),
                pid: u64::from(std::process::id()),
                tid,
                args: None,
            });
    });
}

/// Appends pre-built events (e.g. [`TraceEvent::counter`] rails) to the
/// calling thread's trace buffer, so they drain through [`take_events`]
/// alongside recorded spans. No-op when tracing is disabled.
pub fn push_events(events: Vec<TraceEvent>) {
    if !crate::tracing_enabled() || events.is_empty() {
        return;
    }
    with_local_buffer(|_tid, buffer| {
        buffer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend(events);
    });
}

struct SpanInner {
    name: Cow<'static, str>,
    cat: &'static str,
    start_us: f64,
}

/// RAII span guard; records a complete trace event when dropped.
/// Inert (`None` inside) when tracing is off at construction time.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span(Option<SpanInner>);

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            record(inner.name, inner.cat, inner.start_us);
        }
    }
}

/// Open a span in the default `ntc` category.
pub fn span(name: &'static str) -> Span {
    span_cat("ntc", name)
}

/// Open a span with an explicit category.
pub fn span_cat(cat: &'static str, name: &'static str) -> Span {
    if crate::tracing_enabled() {
        Span(Some(SpanInner {
            name: Cow::Borrowed(name),
            cat,
            start_us: now_us(),
        }))
    } else {
        Span(None)
    }
}

/// Open a span whose name is built lazily — the closure (and its
/// allocation) only runs when tracing is actually on.
pub fn span_with(cat: &'static str, name: impl FnOnce() -> String) -> Span {
    if crate::tracing_enabled() {
        Span(Some(SpanInner {
            name: Cow::Owned(name()),
            cat,
            start_us: now_us(),
        }))
    } else {
        Span(None)
    }
}

/// Drain every thread's buffered events, sorted by start time.
pub fn take_events() -> Vec<TraceEvent> {
    let sinks = sinks().lock().unwrap_or_else(PoisonError::into_inner);
    let mut out = Vec::new();
    for buffer in sinks.iter() {
        out.append(&mut buffer.lock().unwrap_or_else(PoisonError::into_inner));
    }
    out.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    out
}

/// Serialize events as a Chrome trace JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    serde_json::to_string(&ChromeTrace {
        traceEvents: events.to_vec(),
    })
    .expect("trace events contain only strings and finite numbers")
}

/// Drain all buffered events ([`take_events`]) and write them as Chrome
/// trace JSON to `path` (creating parent directories). Returns the
/// number of events written. Load the file in `about:tracing` or
/// <https://ui.perfetto.dev>.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> std::io::Result<usize> {
    let events = take_events();
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, chrome_trace_json(&events))?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_json_round_trips() {
        let events = vec![
            TraceEvent {
                name: "sweep.run".to_owned(),
                cat: "sweep".to_owned(),
                ph: "X".to_owned(),
                ts: 1.5,
                dur: 200.25,
                pid: 42,
                tid: 1,
                args: None,
            },
            TraceEvent {
                name: "ladder 600 MHz".to_owned(),
                cat: "sweep".to_owned(),
                ph: "X".to_owned(),
                ts: 3.75,
                dur: 100.5,
                pid: 42,
                tid: 2,
                args: None,
            },
        ];
        let json = chrome_trace_json(&events);
        // Well-formed JSON with the exact top-level key Perfetto expects.
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        drop(value);
        assert!(json.starts_with("{\"traceEvents\":["));
        // Spans carry no args: the field must vanish from the JSON, so
        // span-only traces look exactly as they did before counters.
        assert!(!json.contains("args"));
        let parsed: ChromeTrace = serde_json::from_str(&json).expect("parses back");
        assert_eq!(parsed.traceEvents.len(), 2);
        for (orig, back) in events.iter().zip(&parsed.traceEvents) {
            assert_eq!(orig.name, back.name);
            assert_eq!(orig.cat, back.cat);
            assert_eq!(orig.ph, "X");
            assert!((orig.ts - back.ts).abs() < 1e-9);
            assert!((orig.dur - back.dur).abs() < 1e-9);
            assert_eq!((orig.pid, orig.tid), (back.pid, back.tid));
        }
    }

    #[test]
    fn counter_events_round_trip_with_args() {
        let rail = TraceEvent::counter(
            "power (W)",
            "energy",
            12.5,
            2,
            counter_args(&[("cores", 6.25), ("dram", 16.9)]),
        );
        let json = chrome_trace_json(std::slice::from_ref(&rail));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\""));
        let parsed: ChromeTrace = serde_json::from_str(&json).expect("parses back");
        assert_eq!(parsed.traceEvents[0], rail);
        let args = parsed.traceEvents[0].args.as_ref().unwrap();
        assert!((args["dram"].as_f64().unwrap() - 16.9).abs() < 1e-12);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn counter_pushes_are_inert_without_the_feature() {
        push_events(vec![TraceEvent::counter(
            "never.recorded",
            "test",
            0.0,
            1,
            counter_args(&[("x", 1.0)]),
        )]);
        assert!(
            take_events().is_empty(),
            "no events may be buffered when tracing is compiled out"
        );
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn spans_are_inert_without_the_feature() {
        {
            let _a = span("never.recorded");
            let _b = span_with("test", || unreachable!("name closure must not run"));
        }
        assert!(
            take_events().is_empty(),
            "no events may be buffered when tracing is compiled out"
        );
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_record_across_threads() {
        let _guard = crate::test_switch_lock().lock().unwrap();
        crate::set_tracing(true);
        let _ = take_events(); // drop anything earlier tests left behind
        {
            let _outer = span_cat("test", "trace.outer");
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    std::thread::spawn(move || {
                        let _s = span_with("test", || format!("trace.worker {i}"));
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
        crate::set_tracing(false);
        let events = take_events();
        let mine: Vec<&TraceEvent> = events.iter().filter(|e| e.cat == "test").collect();
        assert_eq!(mine.len(), 3);
        let tids: std::collections::BTreeSet<u64> = mine.iter().map(|e| e.tid).collect();
        assert!(
            tids.len() >= 2,
            "worker spans must land on distinct threads"
        );
        assert!(mine.iter().any(|e| e.name == "trace.outer"));
        assert!(mine.iter().all(|e| e.ph == "X" && e.dur >= 0.0));
        // Drained means drained.
        assert!(take_events().iter().all(|e| e.cat != "test"));
    }
}
